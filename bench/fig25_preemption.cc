/**
 * @file
 * Figure 25: preemptive checkpoint/restore and live migration.
 *
 * Serves one bursty multi-tenant SLO trace on a 3-replica cluster in
 * four coordination modes — static route-then-shard, online
 * (steal + admission + autoscale), online + deadline-rescue
 * preemption, online + preemption + live migration — under a clean
 * plan and a crash-at-peak plan. Reports interactive-class goodput
 * (deadline rescues pause a running Batch group at a step boundary,
 * checkpoint it through the tier machinery, run the urgent request,
 * restore), autoscaler quiesce drain latency (migration moves
 * checkpointed in-flight groups instead of waiting out the longest
 * batch), and crash recovery resuming partially-executed groups from
 * their last checkpoint. Verdict lines are CI-grepped (": NO " fails
 * the job).
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/cluster.h"
#include "core/coserve.h"
#include "metrics/report.h"
#include "workload/generator.h"

using namespace coserve;

namespace {

enum class Mode { Static, Online, Preempt, PreemptMigrate };

const char *
toString(Mode mode)
{
    switch (mode) {
    case Mode::Static: return "static";
    case Mode::Online: return "online";
    case Mode::Preempt: return "online+preempt";
    case Mode::PreemptMigrate: return "online+preempt+migrate";
    }
    return "?";
}

enum class Plan { Clean, Crash };

const char *
toString(Plan plan)
{
    switch (plan) {
    case Plan::Clean: return "clean";
    case Plan::Crash: return "crash@peak";
    }
    return "?";
}

Trace
burstyTrace()
{
    // Long-running Batch groups keep executors busy so an Interactive
    // burst finds every slot occupied mid-batch: exactly the state
    // where a deadline rescue (pause/checkpoint/run/restore) is the
    // only way to make the budget. MMPP bursts stress the tail.
    TenantSpec interactive;
    interactive.name = "interactive";
    interactive.cls = RequestClass::Interactive;
    interactive.ratePerSec = 30.0;
    interactive.latencyBudget = milliseconds(500);
    interactive.arrivals = ArrivalProcess::MMPP;
    interactive.mmppBurstFactor = 6.0;
    interactive.diurnalAmplitude = 0.8;
    interactive.diurnalPeriod = seconds(120);
    TenantSpec batch;
    batch.name = "batch";
    batch.cls = RequestClass::Batch;
    batch.ratePerSec = 50.0;
    batch.latencyBudget = seconds(20);
    return generateSloTrace(bench::preemptDenseModel(),
                            {interactive, batch}, seconds(120), 0xF25);
}

FaultPlan
faultsFor(Plan plan)
{
    FaultPlan faults;
    if (plan == Plan::Crash)
        faults.crashes.push_back({2, seconds(30)});
    return faults;
}

ClusterResult
runCase(const Harness &h, const EngineConfig &cfg, const Trace &trace,
        Mode mode, Plan plan)
{
    ClusterConfig cc = homogeneousCluster(
        h.context(), cfg, 3, RoutingPolicy::LeastLoaded, "fig25");
    if (mode != Mode::Static) {
        cc.workStealing.enabled = true;
        cc.admission.enabled = true;
        cc.admission.slack = 1.25;
        cc.autoscale.enabled = true;
        cc.autoscale.interval = seconds(1);
        cc.autoscale.cooldown = seconds(2);
        cc.autoscale.minReplicas = 1;
        cc.autoscale.startReplicas = 3;
    }
    if (mode == Mode::Preempt || mode == Mode::PreemptMigrate) {
        cc.preemption.enabled = true;
        cc.preemption.minRunQuantum = milliseconds(20);
        cc.preemption.maxPreemptionsPerGroup = 2;
    }
    if (mode == Mode::PreemptMigrate) {
        cc.preemption.migration = true;
        cc.preemption.migrationMinRemaining = milliseconds(20);
    }
    RunOptions opts = runWithMode(
        mode == Mode::Static ? RunMode::Static : RunMode::Online);
    opts.faults = faultsFor(plan);
    // The showcase case (preempt+migrate through a crash) also emits
    // the observability artifacts: a Perfetto-loadable span trace and
    // the epoch-sampler time series. Telemetry is pure observation, so
    // the table rows are identical with or without it.
    if (mode == Mode::PreemptMigrate && plan == Plan::Crash) {
        opts.telemetry.enabled = true;
        opts.telemetry.tracePath = "fig25_trace.json";
        opts.telemetry.metricsCsvPath = "fig25_metrics.csv";
        opts.telemetry.sampleInterval = milliseconds(500);
    }
    ClusterEngine cluster(std::move(cc));
    return cluster.run(trace, opts);
}

double
interactiveGoodput(const ClusterResult &r)
{
    const SloClassStats &c = r.slo.of(RequestClass::Interactive);
    return r.makespan > 0
               ? static_cast<double>(c.completed - c.violated) /
                     toSeconds(r.makespan)
               : 0.0;
}

} // namespace

int
main()
{
    bench::banner("Figure 25",
                  "Preemptive checkpoint/restore + live migration: "
                  "deadline-rescue goodput, quiesce latency, and crash "
                  "recovery of in-flight groups");

    Harness &h = bench::preemptHarness();
    const Trace trace = burstyTrace();
    const EngineConfig cfg = bench::preemptReplicaConfig();
    std::printf("trace: %zu arrivals over 120 s (bursty interactive + "
                "long batch groups, dense resident board), crash kills "
                "replica 2 of 3 at t=30 s\n\n",
                trace.size());

    Table t({"Mode", "Faults", "Int goodput", "Int p99 (ms)",
             "Violation", "Rescues", "Migrated", "Quiesce max",
             "Lost"});
    const Mode modes[] = {Mode::Static, Mode::Online, Mode::Preempt,
                          Mode::PreemptMigrate};
    const Plan plans[] = {Plan::Clean, Plan::Crash};
    // results[mode][plan]
    ClusterResult results[4][2];
    for (Mode mode : modes) {
        for (Plan plan : plans) {
            ClusterResult r = runCase(h, cfg, trace, mode, plan);
            const SloClassStats &interactive =
                r.slo.of(RequestClass::Interactive);
            t.addRow({toString(mode), toString(plan),
                      formatDouble(interactiveGoodput(r), 1),
                      formatDouble(interactive.latencyMs.quantile(0.99),
                                   1),
                      formatPercent(r.slo.violationRate()),
                      std::to_string(r.preemptions),
                      std::to_string(r.migratedGroups),
                      r.quiesceDrains > 0 ? formatTime(r.quiesceDrainMax)
                                          : std::string("-"),
                      std::to_string(r.crashLost)});
            results[static_cast<int>(mode)][static_cast<int>(plan)] =
                std::move(r);
        }
    }
    t.print();

    const ClusterResult &online = results[1][0];
    const ClusterResult &preempt = results[2][0];
    const ClusterResult &migrate = results[3][0];
    const ClusterResult &migrateCrash = results[3][1];
    std::printf("\n---- online+preempt+migrate, crash@peak ----\n");
    std::printf("%s\n", summarize(migrateCrash).c_str());
    std::printf("telemetry: wrote fig25_trace.json (load in Perfetto / "
                "chrome://tracing) and fig25_metrics.csv\n");

    // Verdict lines (CI greps ": NO "). Every run already proved the
    // conservation invariant images + rejected + crashLost == arrivals
    // by not aborting; the verdicts pin the comparative claims.
    std::printf("deadline rescues fired (preempt, clean): %s "
                "(%lld rescues, %lld restored)\n",
                preempt.preemptions > 0 ? "yes" : "NO",
                static_cast<long long>(preempt.preemptions),
                static_cast<long long>(preempt.restoredGroups));
    const ClusterResult &staticClean = results[0][0];
    const double baseline = std::max(interactiveGoodput(staticClean),
                                     interactiveGoodput(online));
    const bool rescueHelps = interactiveGoodput(migrate) > baseline;
    std::printf("preempt+migrate beats static/online bursty goodput: "
                "%s (%.1f vs %.1f img/s interactive)\n",
                rescueHelps ? "yes" : "NO", interactiveGoodput(migrate),
                baseline);
    const bool migrated = migrate.migratedGroups > 0;
    std::printf("live migration moved checkpointed in-flight groups: "
                "%s (%lld groups, %lld requests)\n",
                migrated ? "yes" : "NO",
                static_cast<long long>(migrate.migratedGroups),
                static_cast<long long>(migrate.migratedRequests));
    // Quiesce no longer drains: migrating in-flight groups must beat
    // waiting out the longest running batch on the quiescing replica.
    // (Drain latency is tracked by the preemption layer, so the
    // baseline is preempt-without-migration, which still drains.)
    const bool quiesceFaster =
        preempt.quiesceDrains > 0 && migrate.quiesceDrains > 0 &&
        migrate.quiesceDrainMax < preempt.quiesceDrainMax;
    std::printf("migration quiesce beats drain-out (max drain): %s "
                "(%s vs %s)\n",
                quiesceFaster ? "yes" : "NO",
                migrate.quiesceDrains > 0
                    ? formatTime(migrate.quiesceDrainMax).c_str()
                    : "n/a",
                preempt.quiesceDrains > 0
                    ? formatTime(preempt.quiesceDrainMax).c_str()
                    : "n/a");
    const bool crashResumes = migrateCrash.crashLost == 0 &&
                              migrateCrash.restoredGroups > 0;
    std::printf("crash recovery resumes in-flight groups losslessly: "
                "%s (%lld restored, %lld lost)\n",
                crashResumes ? "yes" : "NO",
                static_cast<long long>(migrateCrash.restoredGroups),
                static_cast<long long>(migrateCrash.crashLost));
    return 0;
}
