/**
 * @file
 * Figure 23 (extension) — SLO-aware serving: goodput and per-class
 * tail latency of static routing vs. online (live routing + cluster
 * admission + deadline-aware stealing) vs. online + elastic
 * autoscaling, on SLO-classed multi-tenant traces:
 *
 *  1. a *diurnal* mix (interactive + batch tenants whose Poisson rates
 *     swing through a sped-up day/night cycle, plus a deadline-less
 *     best-effort MMPP tenant): the regime where a fixed active set is
 *     wrong twice a day — night traffic spread over all replicas
 *     scatters expert groups (switch churn), day peaks need every
 *     replica;
 *  2. a *bursty* mix (MMPP interactive tenant): admission and
 *     EDF-within-priority keep interactive p99 bounded through bursts
 *     by shedding or downgrading infeasible work.
 *
 * The headline metric is goodput — completed-in-deadline images per
 * second — not raw throughput: a run that serves everything late
 * scores zero. Verdict lines are grepped by CI ("NO" fails the
 * Release job).
 */

#include "bench/bench_util.h"

#include "cluster/cluster.h"
#include "metrics/cluster_result.h"
#include "metrics/report.h"
#include "workload/generator.h"

using namespace coserve;

namespace {

enum class Mode { Static, Online, OnlineAutoscale };

const char *
toString(Mode m)
{
    switch (m) {
      case Mode::Static: return "static";
      case Mode::Online: return "online";
      case Mode::OnlineAutoscale: return "online+autoscale";
    }
    return "?";
}

/** Interactive / batch / best-effort tenants with a diurnal swing. */
std::vector<TenantSpec>
diurnalTenants()
{
    // Capacity on this flat component mix is *load-dependent*: the
    // paper's saturating 250 img/s feed keeps queues deep enough that
    // same-expert groups form and batching amortizes the ~100 ms
    // switches (fig22: ~50 img/s on 4 replicas), but an open-loop
    // feed at realistic rates keeps queues shallow, groups small, and
    // the achievable rate near ~28 img/s. The mix below averages
    // ~18 img/s with a ~29 img/s day peak (oversubscribing the
    // shallow-queue regime for part of each cycle) and a ~7 img/s
    // night trough (one replica's worth).
    TenantSpec interactive;
    interactive.name = "interactive";
    interactive.cls = RequestClass::Interactive;
    interactive.ratePerSec = 9.0;
    interactive.latencyBudget = milliseconds(350);
    interactive.diurnalAmplitude = 0.85;
    interactive.diurnalPeriod = seconds(60);

    TenantSpec batch;
    batch.name = "batch";
    batch.cls = RequestClass::Batch;
    batch.ratePerSec = 6.0;
    batch.latencyBudget = seconds(2);
    batch.diurnalAmplitude = 0.6;
    batch.diurnalPeriod = seconds(60);

    TenantSpec bestEffort;
    bestEffort.name = "best-effort";
    bestEffort.cls = RequestClass::BestEffort;
    bestEffort.ratePerSec = 2.5;
    bestEffort.arrivals = ArrivalProcess::MMPP;
    bestEffort.mmppBurstFactor = 6.0;

    return {interactive, batch, bestEffort};
}

/** Bursty interactive tenant over a steady batch floor. */
std::vector<TenantSpec>
burstyTenants()
{
    TenantSpec interactive;
    interactive.name = "interactive";
    interactive.cls = RequestClass::Interactive;
    interactive.ratePerSec = 8.0;
    interactive.latencyBudget = milliseconds(350);
    interactive.arrivals = ArrivalProcess::MMPP;
    interactive.mmppBurstFactor = 10.0;
    interactive.mmppMeanCalm = seconds(3);
    interactive.mmppMeanBurst = milliseconds(400);

    TenantSpec batch;
    batch.name = "batch";
    batch.cls = RequestClass::Batch;
    batch.ratePerSec = 10.0;
    batch.latencyBudget = seconds(2);

    return {interactive, batch};
}

ClusterConfig
modeConfig(const Harness &h, const EngineConfig &cfg, Mode mode,
           const char *label)
{
    ClusterConfig cc = homogeneousCluster(
        h.context(), cfg, 4, RoutingPolicy::LeastLoaded, label);
    if (mode == Mode::Static)
        return cc;
    cc.onlineRouting = true;
    cc.workStealing.enabled = true;
    cc.admission.enabled = true;
    cc.admission.slack = 1.25;
    if (mode == Mode::OnlineAutoscale) {
        cc.autoscale.enabled = true;
        cc.autoscale.interval = seconds(1);
        cc.autoscale.cooldown = seconds(2);
        cc.autoscale.minReplicas = 1;
        cc.autoscale.startReplicas = 4;
    }
    return cc;
}

void
addModeRow(Table &t, const char *trace, Mode mode,
           const ClusterResult &r)
{
    const SloClassStats &interactive =
        r.slo.of(RequestClass::Interactive);
    t.addRow({trace, toString(mode),
              formatDouble(r.slo.goodput(r.makespan), 1),
              formatDouble(r.throughput, 1),
              formatPercent(r.slo.violationRate()),
              std::to_string(r.slo.rejected() + r.slo.downgraded()),
              formatDouble(interactive.latencyMs.quantile(0.99), 0),
              formatDouble(r.avgActiveReplicas, 2)});
}

void
printClassTable(const ClusterResult &r)
{
    Table t({"Class", "Done", "Violated", "Rejected", "Downgraded",
             "p50 (ms)", "p95 (ms)", "p99 (ms)"});
    for (std::size_t i = 0; i < r.slo.perClass.size(); ++i) {
        const SloClassStats &c = r.slo.perClass[i];
        if (c.completed == 0 && c.rejected == 0 && c.downgraded == 0)
            continue;
        t.addRow({coserve::toString(static_cast<RequestClass>(i)),
                  std::to_string(c.completed),
                  std::to_string(c.violated),
                  std::to_string(c.rejected),
                  std::to_string(c.downgraded),
                  formatDouble(c.latencyMs.quantile(0.50), 1),
                  formatDouble(c.latencyMs.quantile(0.95), 1),
                  formatDouble(c.latencyMs.quantile(0.99), 1)});
    }
    t.print();
}

} // namespace

int
main()
{
    bench::banner("Figure 23 (extension)",
                  "SLO-aware serving: request classes, admission "
                  "control, deadline scheduling and elastic "
                  "autoscaling vs. static routing");

    Harness &h = bench::harnessFor(bench::numaDevice(), bench::modelA());
    const Trace diurnal = generateSloTrace(
        bench::modelA(), diurnalTenants(), seconds(120), 0xF23D);
    const Trace bursty = generateSloTrace(
        bench::modelA(), burstyTenants(), seconds(60), 0xF23B);
    const EngineConfig cfg =
        h.makeConfig(SystemKind::CoServeCasual, diurnal, {});

    std::printf("diurnal trace: %zu images over 120 s; bursty trace: "
                "%zu images over 60 s\n\n",
                diurnal.size(), bursty.size());

    struct TraceCase
    {
        const char *name;
        const Trace *trace;
    };
    const TraceCase cases[] = {{"diurnal", &diurnal},
                               {"bursty", &bursty}};

    Table t({"Trace", "Mode", "Goodput (img/s)", "Throughput",
             "Violation", "Shed", "p99 int (ms)", "Avg active"});
    double staticDiurnal = 0.0, autoDiurnal = 0.0;
    double staticBursty = 0.0, onlineBursty = 0.0;
    for (const TraceCase &tc : cases) {
        for (Mode mode :
             {Mode::Static, Mode::Online, Mode::OnlineAutoscale}) {
            ClusterEngine cluster(
                modeConfig(h, cfg, mode, "fig23"));
            const ClusterResult r = cluster.run(*tc.trace, RunOptions{});
            const double goodput = r.slo.goodput(r.makespan);
            if (tc.trace == &diurnal) {
                if (mode == Mode::Static)
                    staticDiurnal = goodput;
                if (mode == Mode::OnlineAutoscale) {
                    autoDiurnal = goodput;
                    std::printf("---- diurnal, online+autoscale ----\n");
                    std::printf("%s", summarize(r).c_str());
                    printClassTable(r);
                    std::printf("\n");
                }
            } else {
                if (mode == Mode::Static)
                    staticBursty = goodput;
                if (mode == Mode::Online)
                    onlineBursty = goodput;
            }
            addModeRow(t, tc.name, mode, r);
        }
    }
    t.print();

    std::printf("\nslo_diurnal: online+autoscale goodput > static: %s "
                "(%.1f vs %.1f img/s)\n",
                autoDiurnal > staticDiurnal ? "yes" : "NO", autoDiurnal,
                staticDiurnal);
    std::printf("slo_bursty: online goodput >= static: %s "
                "(%.1f vs %.1f img/s)\n",
                onlineBursty >= staticBursty ? "yes" : "NO",
                onlineBursty, staticBursty);
    return 0;
}
