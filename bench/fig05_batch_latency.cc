/**
 * @file
 * Figure 5 — average inference latency vs. batch size on NUMA and UMA
 * devices, GPU and CPU (ResNet101, measured through the offline
 * profiler's microbenchmark path).
 *
 * Paper reference: GPU average latency drops into the 0-10 ms range
 * and plateaus (NUMA plateaus late, UMA around batch 6); CPU average
 * latency sits at 100-200 ms and is optimal around batch 5-6.
 */

#include "bench/bench_util.h"
#include "core/profiler.h"

using namespace coserve;

namespace {

void
sweep(const DeviceSpec &dev, ProcKind proc)
{
    const LatencyModel truth = LatencyModel::calibrated(dev);
    const FootprintModel fp = FootprintModel::calibrated(dev);
    OfflineProfiler profiler(dev, truth, fp);
    std::printf("\n%s — %s (ResNet101)\n", dev.name.c_str(),
                toString(proc));
    Table t({"Batch", "Avg latency (ms)", "Batch latency (ms)"});
    for (const SweepPoint &p : profiler.sweep(ArchId::ResNet101, proc)) {
        if (p.batchSize > 32 || (p.batchSize % 2 == 1 && p.batchSize > 8))
            continue;
        t.addRow({std::to_string(p.batchSize),
                  formatDouble(toMilliseconds(p.avgLatency)),
                  formatDouble(toMilliseconds(p.batchLatency))});
    }
    t.print();
}

} // namespace

int
main()
{
    bench::banner("Figure 5",
                  "Average inference latency with increasing batch size "
                  "(profiler microbenchmark measurements)");
    sweep(bench::numaDevice(), ProcKind::GPU);
    sweep(bench::umaDevice(), ProcKind::GPU);
    sweep(bench::numaDevice(), ProcKind::CPU);
    sweep(bench::umaDevice(), ProcKind::CPU);
    std::printf("\nPaper: GPU avg latency in the 0-10 ms band, plateau "
                "~batch 6 on UMA; CPU avg latency 100-200 ms, optimal "
                "~batch 5.\n");
    return 0;
}
