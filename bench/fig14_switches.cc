/**
 * @file
 * Figure 14 — number of expert switches for CoServe and baselines.
 *
 * Paper reference (Samba / FIFO / Parallel / Best / Casual):
 *   NUMA A1: 598/817/364/64/68      A2: 909/1226/513/77/78
 *        B1: 485/736/287/54/66      B2: 725/1060/414/65/76
 *   UMA  A1: 625/866/372/76/91      A2: 867/1241/534/86/111
 *        B1: 521/724/293/63/90      B2: 720/1083/416/73/106
 * CoServe cuts switches by 78.5%-93.9%.
 */

#include "bench/bench_util.h"

using namespace coserve;

namespace {

void
device(const DeviceSpec &dev)
{
    std::printf("\n================ %s ================\n",
                dev.name.c_str());
    for (const bench::TaskCase &tc : bench::paperTasks()) {
        Harness &h = bench::harnessFor(dev, *tc.model);
        const Trace trace = generateTrace(*tc.model, tc.spec);
        SystemOverrides bestOv;
        if (tc.model == &bench::modelB())
            bestOv.gpuExecutors = dev.arch == MemArch::NUMA ? 4 : 3;

        std::printf("\n%s\n", tc.name);
        Table t({"System", "Switches", "from SSD", "from CPU DRAM",
                 "Evictions"});
        std::int64_t samba = 0, best = 0;
        for (SystemKind kind : bench::figure13Systems()) {
            const SystemOverrides ov =
                kind == SystemKind::CoServeBest ? bestOv
                                                : SystemOverrides{};
            const RunResult r = h.run(kind, trace, ov);
            if (kind == SystemKind::SambaCoE)
                samba = r.switches.total();
            if (kind == SystemKind::CoServeBest)
                best = r.switches.total();
            t.addRow({toString(kind),
                      std::to_string(r.switches.total()),
                      std::to_string(r.switches.loadsFromSsd),
                      std::to_string(r.switches.loadsFromCache),
                      std::to_string(r.switches.evictions)});
        }
        t.print();
        std::printf("switch reduction Best vs Samba-CoE: %s "
                    "(paper: 78.5%%-93.9%%)\n",
                    formatPercent(1.0 - static_cast<double>(best) /
                                            static_cast<double>(samba))
                        .c_str());
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 14",
                  "Number of expert switches for CoServe and baselines");
    device(bench::numaDevice());
    device(bench::umaDevice());
    return 0;
}
