/**
 * @file
 * Figure 1 — proportion of expert-switching latency vs. execution
 * latency, for {ResNet101, YOLOv5m, YOLOv5l} x {NUMA, UMA} x
 * {CPU->GPU, SSD->GPU}.
 *
 * Paper reference values (switch share of total):
 *   NUMA CPU->GPU: 82.1% / 80.6% / 86.2%
 *   UMA  CPU->GPU: 85.6% / 63.1% / 63.2%
 *   NUMA SSD->GPU: 98.9% / 98.0% / 98.6%
 *   UMA  SSD->GPU: 97.9% / 91.0% / 93.1%
 */

#include "bench/bench_util.h"
#include "hw/transfer.h"
#include "model/latency_model.h"

using namespace coserve;

namespace {

void
section(const DeviceSpec &dev, LoadSource src, const char *paperRow)
{
    const TransferModel tm(dev);
    const LatencyModel lat = LatencyModel::calibrated(dev);
    const char *path =
        src == LoadSource::CpuCache ? "CPU to GPU" : "SSD to GPU";
    std::printf("\n%s (%s)   [paper: %s]\n", dev.name.c_str(), path,
                paperRow);

    Table t({"Expert", "Switch", "Execution", "Switch share"});
    for (ArchId arch :
         {ArchId::ResNet101, ArchId::YoloV5m, ArchId::YoloV5l}) {
        const Time sw = tm.loadToGpu(archSpec(arch).weightBytes, src);
        const Time ex = lat.batchLatency(arch, ProcKind::GPU, 1);
        const double share =
            static_cast<double>(sw) / static_cast<double>(sw + ex);
        t.addRow({archSpec(arch).name, formatTime(sw), formatTime(ex),
                  formatPercent(share)});
    }
    t.print();
}

} // namespace

int
main()
{
    bench::banner("Figure 1",
                  "Expert switching latency as a share of inference "
                  "latency per expert type, memory architecture and "
                  "I/O path");

    section(bench::numaDevice(), LoadSource::CpuCache,
            "82.1% / 80.6% / 86.2%");
    section(bench::umaDevice(), LoadSource::CpuCache,
            "85.6% / 63.1% / 63.2%");
    section(bench::numaDevice(), LoadSource::Ssd,
            "98.9% / 98.0% / 98.6%");
    section(bench::umaDevice(), LoadSource::Ssd,
            "97.9% / 91.0% / 93.1%");
    return 0;
}
