/**
 * @file
 * Figure 22 (extension) — online cluster scheduling: static
 * (route-then-shard) vs. online (live-load routing at arrival time)
 * vs. online + work stealing, under the workloads where the static
 * router's private residency/finish model drifts furthest from what
 * the replicas actually do:
 *
 *  1. a bursty trace (panel-at-a-time camera feeds): whole bursts
 *     land between replica state changes, so offline predictions go
 *     stale fastest;
 *  2. a skewed trace (Zipf-weighted component mix): expert-switch
 *     cost concentrates on a few components, the regime where dynamic
 *     work redistribution beats static partitioning;
 *  3. a heterogeneous 2+2 NUMA+UMA cluster on the skewed trace, where
 *     affinity makes the fast NUMA replicas the hot experts' home —
 *     and therefore the backlog — and the idle UMA pair steals from
 *     them (ClusterResult::stolenRequests > 0).
 *
 * Online-mode runs are coordinator-sequential on the shared virtual
 * clock, so every printed number is reproducible regardless of
 * ClusterConfig::parallel.
 */

#include "bench/bench_util.h"

#include <cmath>

#include "cluster/cluster.h"
#include "metrics/cluster_result.h"
#include "metrics/report.h"
#include "util/rng.h"
#include "workload/generator.h"

using namespace coserve;

namespace {

enum class Mode { Static, Online, OnlineSteal };

const char *
toString(Mode m)
{
    switch (m) {
      case Mode::Static: return "static";
      case Mode::Online: return "online";
      case Mode::OnlineSteal: return "online+steal";
    }
    return "?";
}

/**
 * Zipf-weighted component mix at the paper's 4 ms cadence: component
 * rank r is drawn with weight 1 / (1 + r)^1.5, concentrating load on
 * a few experts (the board's natural mix is much flatter).
 */
Trace
skewedTrace(const CoEModel &model, std::size_t numImages,
            std::uint64_t seed)
{
    const ZipfDistribution zipf(model.numComponents(), 1.5);
    Rng rng(seed);
    Trace trace;
    trace.arrivals.reserve(numImages);
    for (std::size_t i = 0; i < numImages; ++i) {
        ImageArrival a;
        a.time = milliseconds(4) * static_cast<Time>(i);
        a.component = static_cast<ComponentId>(zipf(rng));
        a.defective =
            rng.bernoulli(model.component(a.component).defectProb);
        trace.arrivals.push_back(a);
    }
    return trace;
}

ClusterResult
runMode(ClusterConfig cc, Mode mode, const Trace &trace)
{
    cc.workStealing.enabled = mode == Mode::OnlineSteal;
    ClusterEngine cluster(std::move(cc));
    return cluster.run(trace,
                       runWithMode(mode == Mode::Static
                                       ? RunMode::Static
                                       : RunMode::Online));
}

} // namespace

int
main()
{
    bench::banner("Figure 22 (extension)",
                  "Online cluster scheduling: live-load routing and "
                  "cross-replica work stealing vs. static routing");

    Harness &h = bench::harnessFor(bench::numaDevice(), bench::modelA());
    TaskSpec bursty = taskA1();
    bursty.name = "bursty";
    bursty.numImages = 2000;
    bursty.arrivals = ArrivalProcess::Bursty;
    const Trace burstyTrace = generateTrace(bench::modelA(), bursty);
    const Trace skewed = skewedTrace(bench::modelA(), 2000, 0xF1622);
    const EngineConfig cfg =
        h.makeConfig(SystemKind::CoServeCasual, burstyTrace, {});

    // -------- 4 homogeneous replicas, least-loaded, bursty + skewed
    Table t({"Trace", "Mode", "Throughput (img/s)", "Switches",
             "Imbalance", "Stolen"});
    double staticSkewed = 0.0, stealSkewed = 0.0;
    struct TraceCase
    {
        const char *name;
        const Trace *trace;
    };
    const TraceCase cases[] = {{"bursty", &burstyTrace},
                               {"skewed", &skewed}};
    for (const TraceCase &tc : cases) {
        for (Mode mode :
             {Mode::Static, Mode::Online, Mode::OnlineSteal}) {
            const ClusterResult r = runMode(
                homogeneousCluster(h.context(), cfg, 4,
                                   RoutingPolicy::LeastLoaded, "fig22"),
                mode, *tc.trace);
            if (tc.trace == &skewed) {
                if (mode == Mode::Static)
                    staticSkewed = r.throughput;
                if (mode == Mode::OnlineSteal)
                    stealSkewed = r.throughput;
            }
            t.addRow({tc.name, toString(mode),
                      formatDouble(r.throughput, 1),
                      std::to_string(r.switches.total()),
                      formatDouble(r.imbalance(), 2),
                      std::to_string(r.stolenRequests)});
        }
    }
    t.print();
    std::printf("online+stealing >= static least-loaded on the skewed "
                "trace: %s (%.1f vs %.1f img/s)\n",
                stealSkewed >= staticSkewed ? "yes" : "NO", stealSkewed,
                staticSkewed);

    // -------- heterogeneous 2+2 NUMA+UMA cluster, skewed trace
    std::printf("\n---- Heterogeneous 2+2 cluster (NUMA + UMA), skewed "
                "trace ----\n");
    Harness &uma = bench::harnessFor(bench::umaDevice(), bench::modelA());
    const EngineConfig numaCfg =
        h.makeConfig(SystemKind::CoServeCasual, skewed, {});
    const EngineConfig umaCfg =
        uma.makeConfig(SystemKind::CoServeCasual, skewed, {});
    const auto heteroConfig = [&]() {
        return heterogeneousCluster({{&h.context(), numaCfg},
                                     {&h.context(), numaCfg},
                                     {&uma.context(), umaCfg},
                                     {&uma.context(), umaCfg}},
                                    RoutingPolicy::LeastLoaded,
                                    "fig22-hetero");
    };

    std::int64_t heteroStolen = 0;
    double heteroStatic = 0.0, heteroSteal = 0.0;
    for (Mode mode : {Mode::Static, Mode::OnlineSteal}) {
        const ClusterResult r = runMode(heteroConfig(), mode, skewed);
        if (mode == Mode::Static) {
            heteroStatic = r.throughput;
        } else {
            heteroSteal = r.throughput;
            heteroStolen = r.stolenRequests;
            std::printf("%s", summarize(r).c_str());
        }
    }
    std::printf("hetero online+steal vs static: %.1f vs %.1f img/s; "
                "stolen requests: %lld (%s)\n",
                heteroSteal, heteroStatic,
                static_cast<long long>(heteroStolen),
                heteroStolen > 0 ? "stealing active"
                                 : "NO STEALS — unexpected");
    return 0;
}
