/**
 * @file
 * Figure 17 — throughput under different numbers of executors.
 *
 * Offline measurement (paper Section 5.3): throughput of CoServe on a
 * sample portion of the data under 1G..5G GPU executors with one CPU
 * executor, plus 3G/4G with two CPU executors. The paper finds
 * 3 GPU + 1 CPU best for board A and 4 GPU + 1 CPU best for board B on
 * both devices; too few executors underuse compute, too many add
 * overhead and split memory.
 */

#include "bench/bench_util.h"

using namespace coserve;

namespace {

void
measurement(const DeviceSpec &dev, const CoEModel &model,
            const char *name, const TaskSpec &task)
{
    Harness &h = bench::harnessFor(dev, model);
    // "we use a portion of the data" — a sample prefix of the task.
    const Trace sample = generateTrace(model, task).prefix(1200);

    std::printf("\n%s — %s\n", dev.name.c_str(), name);
    Table t({"Executors", "Throughput (img/s)"});
    struct Cand { int g, c; };
    const int g4 = 4;
    const std::vector<Cand> candidates{
        {1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {3, 2}, {g4, 2}};
    double bestThr = 0.0;
    std::string bestName;
    for (const Cand &cand : candidates) {
        SystemOverrides ov;
        ov.gpuExecutors = cand.g;
        ov.cpuExecutors = cand.c;
        const RunResult r =
            h.run(SystemKind::CoServeCasual, sample, ov);
        const std::string label = std::to_string(cand.g) + "G+" +
                                  std::to_string(cand.c) + "C";
        t.addRow({label, formatDouble(r.throughput, 1)});
        if (r.throughput > bestThr) {
            bestThr = r.throughput;
            bestName = label;
        }
    }
    t.print();
    std::printf("best configuration: %s (%.1f img/s)\n",
                bestName.c_str(), bestThr);
}

} // namespace

int
main()
{
    bench::banner("Figure 17",
                  "Throughput under different numbers of executors "
                  "(G = GPU executors, C = CPU executors)");
    measurement(bench::numaDevice(), bench::modelA(), "Measurement A",
                taskA1());
    measurement(bench::numaDevice(), bench::modelB(), "Measurement B",
                taskB1());
    measurement(bench::umaDevice(), bench::modelA(), "Measurement A",
                taskA1());
    measurement(bench::umaDevice(), bench::modelB(), "Measurement B",
                taskB1());
    std::printf("\nPaper: 3G+1C best for board A, 4G+1C best for board "
                "B; throughput degrades with too few or too many "
                "executors.\n");
    return 0;
}
