/**
 * @file
 * Figure 11 — cumulative distribution function of expert usage with
 * the decay-window selection.
 *
 * Paper reference: the sorted-usage CDF lies between the linear and
 * step extremes; the selected expert-loading point in the example is
 * (35, 0.602).
 */

#include "bench/bench_util.h"
#include "coe/usage.h"
#include "core/coserve.h"

using namespace coserve;

int
main()
{
    bench::banner("Figure 11",
                  "CDF of expert usage (board A) and the planner's "
                  "selected expert-loading number");

    const CoEModel &model = bench::modelA();
    const UsageProfile usage = UsageProfile::exact(model);
    const auto n = model.numExperts();

    Table t({"Experts (top-k)", "Actual CDF", "Linear", "Step"});
    for (std::size_t k : {1u, 5u, 10u, 20u, 35u, 50u, 75u, 100u, 150u,
                          200u, 300u, 380u}) {
        if (k > n)
            break;
        t.addRow({std::to_string(k), formatDouble(usage.topKMass(k), 3),
                  formatDouble(static_cast<double>(k) /
                                   static_cast<double>(n),
                               3),
                  "1.000"});
    }
    t.print();
    std::printf("\ntop-35 mass = %.3f   (paper anchor: (35, 0.602))\n",
                usage.topKMass(35));

    // Run the decay-window search on a sample workload so the selected
    // window is shown alongside the CDF, as in the figure.
    const Harness &h = bench::harnessFor(bench::numaDevice(), model);
    const Trace sample =
        generateTrace(model, taskA1()).prefix(400);
    const MemoryPlan plan = planMemory(h.context(), 3, 1, sample);
    std::printf("selected window: [%d, %d] experts; selected count %d\n",
                plan.search.windowLow, plan.search.windowHigh,
                plan.gpuExpertCount);
    return 0;
}
