/**
 * @file
 * Figure 18 — throughput measured at the window boundaries during the
 * decay-window memory search (Section 4.4) on the NUMA GPU.
 *
 * Paper reference: initial window 15, linear error rate 5%. For task A
 * the search selects the window [28, 39] (linear error 7.7%) and loads
 * 35 experts for 25.4 img/s; for task B the window is [31, 42] (error
 * 7.5%), 34 experts, 26.7 img/s. Throughput rises, then falls as batch
 * memory gets squeezed; the peak lies inside the selected window.
 */

#include "bench/bench_util.h"
#include "core/coserve.h"

using namespace coserve;

namespace {

void
search(const CoEModel &model, const char *name, const TaskSpec &task,
       const char *paperRef)
{
    Harness &h = bench::harnessFor(bench::numaDevice(), model);
    const Trace sample = generateTrace(model, task).prefix(400);

    PlannerOptions opts;
    opts.initialWindow = 15; // as in the paper's evaluation
    opts.errorMargin = 0.05; // 5% linear error rate
    const MemoryPlan plan = planMemory(h.context(), 3, 1, sample, opts);

    std::printf("\nMeasurement %s   [paper: %s]\n", name, paperRef);
    Table t({"Experts loaded", "Sample throughput (img/s)"});
    for (const PlannerProbe &p : plan.search.probes) {
        t.addRow({std::to_string(p.expertCount),
                  formatDouble(p.throughput, 1)});
    }
    t.print();
    std::printf("selected window [%d, %d], selected count %d, linear "
                "error %s%s\n",
                plan.search.windowLow, plan.search.windowHigh,
                plan.gpuExpertCount,
                formatPercent(plan.search.linearError).c_str(),
                plan.search.deviated ? "" : " (no deviation: exhausted)");

    // Validate the selection against a full sweep on the real task:
    // throughput should rise then fall, peaking near the window.
    const Trace full = generateTrace(model, task);
    std::printf("\nfull-task sweep of the expert count:\n");
    Table sweep({"Experts loaded", "Throughput (img/s)"});
    const auto [lo, hi] = gpuExpertCountBounds(h.context(), 3, 1);
    for (int n = lo; n <= hi; n += std::max(1, (hi - lo) / 8)) {
        SystemOverrides ov;
        ov.gpuExpertCount = n;
        const RunResult r = h.run(SystemKind::CoServeBest, full, ov);
        sweep.addRow({std::to_string(n), formatDouble(r.throughput, 1)});
    }
    sweep.print();
}

} // namespace

int
main()
{
    bench::banner("Figure 18",
                  "Throughput at window boundaries during the sliding "
                  "decay-window process (NUMA GPU)");
    search(bench::modelA(), "A", taskA1(),
           "window [28,39], 35 experts, 25.4 img/s, 7.7% error");
    search(bench::modelB(), "B", taskB1(),
           "window [31,42], 34 experts, 26.7 img/s, 7.5% error");
    return 0;
}
