/**
 * @file
 * Table 1 — hardware for evaluation.
 *
 * Prints the device descriptions the simulator substitutes for the
 * paper's two machines, including the load-path bandwidths calibrated
 * from Figure 1.
 */

#include "bench/bench_util.h"

using namespace coserve;

int
main()
{
    bench::banner("Table 1", "Hardware for evaluation (simulated "
                             "device models; see DESIGN.md)");

    Table t({"Property", "NUMA", "UMA"});
    const DeviceSpec numa = bench::numaDevice();
    const DeviceSpec uma = bench::umaDevice();
    t.addRow({"GPU", numa.gpu.name, uma.gpu.name});
    t.addRow({"CPU", numa.cpu.name, uma.cpu.name});
    t.addRow({"GPU memory", formatBytes(numa.gpuMemoryBytes),
              formatBytes(uma.gpuMemoryBytes) + " (unified)"});
    t.addRow({"CPU memory", formatBytes(numa.cpuMemoryBytes), "shared"});
    t.addRow({"SSD read BW", formatBytes(static_cast<std::int64_t>(
                                 numa.ssdBps)) + "/s",
              formatBytes(static_cast<std::int64_t>(uma.ssdBps)) + "/s"});
    t.addRow({"Deserialize BW",
              formatBytes(static_cast<std::int64_t>(
                  numa.deserializeBps)) + "/s",
              formatBytes(static_cast<std::int64_t>(
                  uma.deserializeBps)) + "/s"});
    t.addRow({"CPU->GPU link",
              formatBytes(static_cast<std::int64_t>(numa.pciBps)) + "/s",
              "unified (reorganize only)"});
    t.addRow({"Reserved", formatBytes(numa.reservedBytes),
              formatBytes(uma.reservedBytes)});
    t.print();

    std::printf("\nPaper Table 1: RTX3080Ti (12 GB) + Xeon Silver 4214R"
                " (16 GB), MTFD-DAK480TDS (530 MB/s) | Apple M2, 24 GB"
                " unified, AP0512Z (~3000 MB/s).\n");
    return 0;
}
