/**
 * @file
 * Figure 21 (extension) — the memory-tier hierarchy under the knobs
 * the unified MemoryTier refactor exposes:
 *
 *  1. CPU DRAM tier capacity sweep on one replica: hit rate and
 *     throughput as the cache tier grows from nothing to all of host
 *     DRAM (the hit-rate / latency trade-off a uniform tier
 *     abstraction makes measurable).
 *  2. Shared vs. private CPU tier on a 4-replica cluster with the
 *     same total DRAM: one mutex-guarded SharedCpuTier behind all
 *     replicas turns sibling evictions into DRAM hits, so the shared
 *     hit rate must come out strictly higher.
 *  3. Heterogeneous 2+2 smoke: two NUMA + two UMA replicas with
 *     per-replica DeviceSpecs behind the least-loaded router.
 *
 * Runs use sequential replica execution so shared-tier population
 * order — and therefore every printed number — is reproducible.
 */

#include "bench/bench_util.h"

#include "cluster/cluster.h"
#include "metrics/cluster_result.h"

using namespace coserve;

namespace {

constexpr std::int64_t kGB = 1024ll * 1024 * 1024;

void
capacitySweep(Harness &h, const Trace &trace)
{
    std::printf("\n---- CPU DRAM tier capacity sweep (1 replica) ----\n");
    Table t({"Cache (GiB)", "Throughput (img/s)", "Hit rate",
             "SSD loads", "DRAM loads", "Tier evictions"});
    for (std::int64_t gb : {0, 2, 4, 8, 14}) {
        EngineConfig cfg =
            h.makeConfig(SystemKind::CoServeCasual, trace, {});
        cfg.label = "fig21-cap";
        cfg.cpuCacheTier = gb > 0;
        cfg.cpuCacheBytes = gb * kGB;
        auto engine = makeCoServeEngine(h.context(), cfg);
        const RunResult r = engine->run(trace);
        const TierStats *cache = findTierStats(r.tiers, "cpu.cache");
        t.addRow({std::to_string(gb), formatDouble(r.throughput, 1),
                  cache ? formatPercent(cache->hitRate())
                        : std::string("-"),
                  std::to_string(r.switches.loadsFromSsd),
                  std::to_string(r.switches.loadsFromCache),
                  cache ? std::to_string(cache->counters.evictions)
                        : std::string("-")});
    }
    t.print();
}

void
sharedVsPrivate(Harness &h, const Trace &trace)
{
    std::printf("\n---- Shared vs. private CPU tier (4 replicas, same "
                "total DRAM) ----\n");
    EngineConfig cfg =
        h.makeConfig(SystemKind::CoServeCasual, trace, {});
    cfg.cpuCacheTier = true;
    cfg.cpuCacheBytes = 3 * kGB; // per replica; shared derives 4x

    Table t({"CPU tier", "Throughput (img/s)", "Hit rate", "SSD loads",
             "DRAM loads", "Tier evictions"});
    double privateRate = 0.0, sharedRate = 0.0;
    for (bool shared : {false, true}) {
        ClusterConfig cc = homogeneousCluster(
            h.context(), cfg, 4, RoutingPolicy::LeastLoaded, "fig21");
        cc.sharedCpu.enabled = shared;
        cc.parallel = false; // reproducible shared-tier population
        ClusterEngine cluster(std::move(cc));
        const ClusterResult r = cluster.run(trace, RunOptions{});
        const TierStats *tier =
            findTierStats(r.tiers, shared ? "cpu.shared" : "cpu.cache");
        const double rate = tier ? tier->hitRate() : 0.0;
        (shared ? sharedRate : privateRate) = rate;
        t.addRow({shared ? "shared" : "private",
                  formatDouble(r.throughput, 1), formatPercent(rate),
                  std::to_string(r.switches.loadsFromSsd),
                  std::to_string(r.switches.loadsFromCache),
                  tier ? std::to_string(tier->counters.evictions)
                       : std::string("-")});
    }
    t.print();
    std::printf("shared CPU tier hit rate strictly higher: %s "
                "(%.1f%% vs %.1f%%)\n",
                sharedRate > privateRate ? "yes" : "NO",
                100.0 * sharedRate, 100.0 * privateRate);
}

void
heterogeneousSmoke(const Trace &trace)
{
    std::printf("\n---- Heterogeneous 2+2 cluster (NUMA + UMA) ----\n");
    Harness &numa =
        bench::harnessFor(bench::numaDevice(), bench::modelA());
    Harness &uma = bench::harnessFor(bench::umaDevice(), bench::modelA());
    const EngineConfig numaCfg =
        numa.makeConfig(SystemKind::CoServeCasual, trace, {});
    const EngineConfig umaCfg =
        uma.makeConfig(SystemKind::CoServeCasual, trace, {});

    ClusterConfig cc = heterogeneousCluster(
        {{&numa.context(), numaCfg},
         {&numa.context(), numaCfg},
         {&uma.context(), umaCfg},
         {&uma.context(), umaCfg}},
        RoutingPolicy::LeastLoaded, "fig21-hetero");
    cc.parallel = false;
    ClusterEngine cluster(std::move(cc));
    const ClusterResult r = cluster.run(trace, RunOptions{});

    Table t({"Replica", "Device", "Images", "Throughput (img/s)"});
    const char *devNames[] = {"NUMA", "NUMA", "UMA", "UMA"};
    for (std::size_t i = 0; i < r.replicas.size(); ++i) {
        t.addRow({std::to_string(i), devNames[i],
                  std::to_string(r.replicas[i].images),
                  formatDouble(r.replicas[i].throughput, 1)});
    }
    t.print();
    std::printf("cluster: %lld images, %.1f img/s aggregate, "
                "imbalance %.2f\n",
                static_cast<long long>(r.images), r.throughput,
                r.imbalance());
}

} // namespace

int
main()
{
    bench::banner("Figure 21 (extension)",
                  "Memory-tier hierarchy: capacity sweep, shared vs. "
                  "private CPU tier, heterogeneous cluster");

    Harness &h = bench::harnessFor(bench::numaDevice(), bench::modelA());
    TaskSpec task = taskA1();
    task.numImages = 2000;
    const Trace trace = generateTrace(bench::modelA(), task);

    capacitySweep(h, trace);
    sharedVsPrivate(h, trace);
    heterogeneousSmoke(trace);
    return 0;
}
