/**
 * @file
 * Figure 13 — throughput of CoServe and baselines (the headline
 * result): 5 systems x 4 tasks x 2 devices.
 *
 * Paper reference (img/s), NUMA: CoServe Best 26.3 / 28.7 / 27.2 /
 * 29.6 on A1/A2/B1/B2 with speedups of 7.5x, 8.2x, 6.3x, 7.0x over
 * Samba-CoE, 9.4x-10.5x over Samba-CoE FIFO, and 4.5x-5.5x over
 * Samba-CoE Parallel. UMA: Best 24.5 / 27.6 / 24.1 / 27.6 with
 * speedups 6.6x-7.7x, 9.3x-12x, 4.6x-5.8x. CoServe Casual trails Best
 * by 5.7%-18.8%.
 *
 * As for every bench in this repo: the absolute numbers come from a
 * calibrated simulator, so the *shape* (ordering, rough factors) is
 * the reproduction target; see EXPERIMENTS.md.
 */

#include "bench/bench_util.h"

using namespace coserve;

namespace {

const char *
paperRow(bool numa, const std::string &task)
{
    // Best-vs-baseline annotations from the figure.
    if (numa) {
        if (task == "Task A1") return "Best 26.3, Casual 22.2; 7.5x/9.4x/4.9x";
        if (task == "Task A2") return "Best 28.7, Casual 23.7; 8.2x/9.0x/5.5x";
        if (task == "Task B1") return "Best 27.2, Casual 22.1; 6.3x/10.5x/4.5x";
        return "Best 29.6, Casual 25.7; 7.0x/9.5x/4.7x";
    }
    if (task == "Task A1") return "Best 24.5, Casual 23.1; 6.6x/10.2x/4.8x";
    if (task == "Task A2") return "Best 27.6, Casual 24.4; 7.7x/12.0x/5.8x";
    if (task == "Task B1") return "Best 24.1, Casual 22.9; 5.6x/9.3x/4.6x";
    return "Best 27.6, Casual 24.9; 6.7x/10.6x/5.3x";
}

void
device(const DeviceSpec &dev)
{
    std::printf("\n================ %s ================\n",
                dev.name.c_str());
    for (const bench::TaskCase &tc : bench::paperTasks()) {
        Harness &h = bench::harnessFor(dev, *tc.model);
        const Trace trace = generateTrace(*tc.model, tc.spec);

        // The fig.17 offline sweep picks 3 GPU executors for board A
        // and 4 for board B on both devices (paper Section 5.3).
        SystemOverrides bestOv;
        if (tc.model == &bench::modelB())
            bestOv.gpuExecutors = dev.arch == MemArch::NUMA ? 4 : 3;

        std::printf("\n%s (%zu images)   [paper: %s]\n", tc.name,
                    trace.size(),
                    paperRow(dev.arch == MemArch::NUMA, tc.name));
        Table t({"System", "Throughput (img/s)", "vs Samba-CoE",
                 "Makespan"});
        double samba = 0.0, best = 0.0;
        std::vector<std::pair<std::string, double>> rows;
        for (SystemKind kind : bench::figure13Systems()) {
            const SystemOverrides ov =
                kind == SystemKind::CoServeBest ? bestOv
                                                : SystemOverrides{};
            const RunResult r = h.run(kind, trace, ov);
            if (kind == SystemKind::SambaCoE)
                samba = r.throughput;
            if (kind == SystemKind::CoServeBest)
                best = r.throughput;
            rows.emplace_back(toString(kind), r.throughput);
            t.addRow({toString(kind), formatDouble(r.throughput, 1),
                      formatDouble(r.throughput / samba, 2) + "x",
                      formatDouble(toSeconds(r.makespan), 1) + " s"});
        }
        t.print();
        std::printf("CoServe Best speedup over Samba-CoE: %.1fx "
                    "(paper band: 4.5x-12x over the baselines)\n",
                    best / samba);
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 13",
                  "Throughput of CoServe and baselines (headline)");
    device(bench::numaDevice());
    device(bench::umaDevice());
    return 0;
}
