/**
 * @file
 * Figure 6 — memory footprint vs. batch size on NUMA and UMA devices,
 * GPU and CPU (ResNet101).
 *
 * Paper reference: footprints grow linearly with batch size, reaching
 * ~10 GB near batch 30 on the NUMA GPU; GPU and CPU footprints differ
 * because frameworks organize tensors differently (Section 3.3), and
 * one extra batched image costs about as much as loading 1.5 experts.
 */

#include "bench/bench_util.h"
#include "model/footprint_model.h"

using namespace coserve;

int
main()
{
    bench::banner("Figure 6",
                  "Memory footprint with increasing batch size");

    for (const DeviceSpec &dev :
         {bench::numaDevice(), bench::umaDevice()}) {
        const FootprintModel fp = FootprintModel::calibrated(dev);
        std::printf("\n%s (ResNet101)\n", dev.name.c_str());
        Table t({"Batch", "GPU footprint", "CPU footprint"});
        for (int n : {1, 2, 4, 8, 12, 16, 20, 24, 28, 32}) {
            t.addRow({std::to_string(n),
                      formatBytes(fp.batchBytes(ArchId::ResNet101,
                                                ProcKind::GPU, n)),
                      formatBytes(fp.batchBytes(ArchId::ResNet101,
                                                ProcKind::CPU, n))});
        }
        t.print();
        const double perImageInExperts =
            static_cast<double>(fp.activationBytesPerImage(
                ArchId::ResNet101, ProcKind::GPU)) /
            static_cast<double>(fp.expertBytes(ArchId::ResNet101));
        std::printf("one extra GPU image = %.2f experts "
                    "(paper anchor on NUMA: ~1.5)\n",
                    perImageInExperts);
    }
    return 0;
}
