/**
 * @file
 * Figure 16 — expert-switch breakdown per optimization stage.
 *
 * Paper reference (None/EM/EM+RA/CoServe), NUMA:
 *   A1: 413/321/173/64    A2: 630/460/208/77
 *   B1: 371/270/157/54    B2: 520/387/191/65
 * Each optimization removes switches, proportionally to its
 * throughput gain in Figure 15.
 */

#include "bench/bench_util.h"

using namespace coserve;

int
main()
{
    bench::banner("Figure 16",
                  "Expert-switch breakdown for each optimization");

    for (const DeviceSpec &dev :
         {bench::numaDevice(), bench::umaDevice()}) {
        std::printf("\n================ %s ================\n",
                    dev.name.c_str());
        for (const bench::TaskCase &tc : bench::paperTasks()) {
            Harness &h = bench::harnessFor(dev, *tc.model);
            const Trace trace = generateTrace(*tc.model, tc.spec);
            std::printf("\n%s\n", tc.name);
            Table t({"Stage", "Switches", "reduction vs None"});
            std::int64_t none = 0;
            for (SystemKind kind : bench::ablationSystems()) {
                const RunResult r = h.run(kind, trace);
                if (kind == SystemKind::CoServeNone)
                    none = r.switches.total();
                const char *label =
                    kind == SystemKind::CoServeCasual ? "CoServe (full)"
                                                      : toString(kind);
                t.addRow({label, std::to_string(r.switches.total()),
                          formatPercent(
                              1.0 - static_cast<double>(
                                        r.switches.total()) /
                                        static_cast<double>(none))});
            }
            t.print();
        }
    }
    return 0;
}
