/**
 * @file
 * Figure 24 (extension): per-class goodput under injected failures.
 *
 * Serves one multi-tenant SLO trace on a 4-replica cluster in three
 * coordination modes — static route-then-shard, online + work
 * stealing, online + stealing + autoscale — under three fault plans:
 * clean, one replica crashing at peak load, and crash plus a straggler
 * window on a second replica. Reports aggregate and interactive-class
 * goodput, the crash re-home/lost accounting, and verdict lines CI
 * greps (": NO " fails the job).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/cluster.h"
#include "metrics/report.h"
#include "workload/generator.h"

using namespace coserve;

namespace {

enum class Mode { Static, OnlineSteal, OnlineAutoscale };

const char *
toString(Mode mode)
{
    switch (mode) {
    case Mode::Static: return "static";
    case Mode::OnlineSteal: return "online+steal";
    case Mode::OnlineAutoscale: return "online+autoscale";
    }
    return "?";
}

enum class Plan { Clean, Crash, CrashStraggler };

const char *
toString(Plan plan)
{
    switch (plan) {
    case Plan::Clean: return "clean";
    case Plan::Crash: return "crash@peak";
    case Plan::CrashStraggler: return "crash+straggler";
    }
    return "?";
}

Trace
faultTrace()
{
    // Interactive tenant peaking mid-run (diurnal), steady batch, so
    // the crash at t=60s lands at the interactive peak.
    TenantSpec interactive;
    interactive.name = "interactive";
    interactive.cls = RequestClass::Interactive;
    interactive.ratePerSec = 14.0;
    interactive.latencyBudget = milliseconds(350);
    interactive.diurnalAmplitude = 0.85;
    interactive.diurnalPeriod = seconds(120);
    TenantSpec batch;
    batch.name = "batch";
    batch.cls = RequestClass::Batch;
    batch.ratePerSec = 8.0;
    batch.latencyBudget = seconds(2);
    return generateSloTrace(bench::modelA(), {interactive, batch},
                            seconds(120), 0xF24);
}

FaultPlan
faultsFor(Plan plan)
{
    FaultPlan faults;
    if (plan != Plan::Clean)
        faults.crashes.push_back({3, seconds(30)});
    if (plan == Plan::CrashStraggler)
        faults.stragglers.push_back({1, seconds(40), seconds(80), 3.0});
    return faults;
}

ClusterResult
runCase(const Harness &h, const EngineConfig &cfg, const Trace &trace,
        Mode mode, Plan plan)
{
    ClusterConfig cc = homogeneousCluster(
        h.context(), cfg, 4, RoutingPolicy::LeastLoaded, "fig24");
    if (mode != Mode::Static) {
        cc.workStealing.enabled = true;
        cc.admission.enabled = true;
        cc.admission.slack = 1.25;
    }
    if (mode == Mode::OnlineAutoscale) {
        cc.autoscale.enabled = true;
        cc.autoscale.interval = seconds(1);
        cc.autoscale.cooldown = seconds(2);
        cc.autoscale.minReplicas = 1;
        cc.autoscale.startReplicas = 4;
    }
    RunOptions opts = runWithMode(
        mode == Mode::Static ? RunMode::Static : RunMode::Online);
    opts.faults = faultsFor(plan);
    ClusterEngine cluster(std::move(cc));
    return cluster.run(trace, opts);
}

} // namespace

int
main()
{
    bench::banner("Figure 24 (extension)",
                  "Goodput under failure: replica crash at peak load "
                  "and straggler windows, static vs online+steal vs "
                  "online+autoscale");

    Harness &h = bench::harnessFor(bench::numaDevice(), bench::modelA());
    const Trace trace = faultTrace();
    const EngineConfig cfg =
        h.makeConfig(SystemKind::CoServeCasual, trace, {});
    std::printf("trace: %zu arrivals over 120 s, crash kills replica "
                "3 of 4 at t=30 s (interactive peak)\n\n",
                trace.size());

    Table t({"Mode", "Faults", "Goodput (img/s)", "Int goodput",
             "Violation", "Re-homed", "Lost", "Images"});
    // goodput[mode][plan]
    double goodput[3][3] = {};
    double cleanLoss[3] = {};
    std::int64_t lostTotal = 0;
    for (Mode mode :
         {Mode::Static, Mode::OnlineSteal, Mode::OnlineAutoscale}) {
        for (Plan plan :
             {Plan::Clean, Plan::Crash, Plan::CrashStraggler}) {
            const ClusterResult r = runCase(h, cfg, trace, mode, plan);
            const double g = r.slo.goodput(r.makespan);
            goodput[static_cast<int>(mode)][static_cast<int>(plan)] = g;
            lostTotal += r.crashLost;
            const SloClassStats &interactive =
                r.slo.of(RequestClass::Interactive);
            const double intGoodput =
                r.makespan > 0
                    ? static_cast<double>(interactive.completed -
                                          interactive.violated) /
                          toSeconds(r.makespan)
                    : 0.0;
            t.addRow({toString(mode), toString(plan), formatDouble(g, 1),
                      formatDouble(intGoodput, 1),
                      formatPercent(r.slo.violationRate()),
                      std::to_string(r.crashRehomed),
                      std::to_string(r.crashLost),
                      std::to_string(r.images)});
            if (plan == Plan::CrashStraggler) {
                std::printf("---- %s, %s ----\n", toString(mode),
                            toString(plan));
                std::printf("%s\n", summarize(r).c_str());
            }
        }
        cleanLoss[static_cast<int>(mode)] =
            goodput[static_cast<int>(mode)][0] -
            goodput[static_cast<int>(mode)][2];
    }
    t.print();

    // Verdict lines (CI greps ": NO "). Every run already proved the
    // conservation invariant images + rejected + lost == arrivals by
    // not aborting; the verdicts pin the comparative claims.
    std::printf("\ncrash recovery re-homed every request (0 lost): %s "
                "(%lld lost)\n",
                lostTotal == 0 ? "yes" : "NO",
                static_cast<long long>(lostTotal));
    const bool stealBeatsStatic = goodput[1][1] > goodput[0][1];
    std::printf("online+steal goodput under crash beats static: %s "
                "(%.1f vs %.1f img/s)\n",
                stealBeatsStatic ? "yes" : "NO", goodput[1][1],
                goodput[0][1]);
    (void)cleanLoss;
    const bool autoBeatsStatic = goodput[2][2] > goodput[0][2];
    std::printf("online+autoscale goodput under crash+straggler beats "
                "static: %s (%.1f vs %.1f img/s)\n",
                autoBeatsStatic ? "yes" : "NO", goodput[2][2],
                goodput[0][2]);
    return 0;
}
