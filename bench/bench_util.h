/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every bench prints (a) a banner naming the paper artifact it
 * regenerates, (b) the measured rows/series, and (c) the paper's
 * reference numbers where the paper states them, so paper-vs-measured
 * comparison is immediate (EXPERIMENTS.md records the analysis).
 */

#ifndef COSERVE_BENCH_BENCH_UTIL_H
#define COSERVE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/systems.h"
#include "coe/board_builder.h"
#include "core/coserve.h"
#include "util/logging.h"
#include "util/strutil.h"
#include "util/table.h"

namespace coserve::bench {

/** Print the standard banner for one reproduced artifact. */
inline void
banner(const std::string &artifact, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("CoServe reproduction — %s\n", artifact.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==============================================================\n");
}

/** Devices of Table 1. */
inline const DeviceSpec &
numaDevice()
{
    static const DeviceSpec d = numaRtx3080Ti();
    return d;
}

inline const DeviceSpec &
umaDevice()
{
    static const DeviceSpec d = umaAppleM2();
    return d;
}

/** Lazily-built CoE models for circuit boards A and B. */
inline const CoEModel &
modelA()
{
    static const CoEModel m = buildBoard(boardA());
    return m;
}

inline const CoEModel &
modelB()
{
    static const CoEModel m = buildBoard(boardB());
    return m;
}

/** Harness cache: offline profiling runs once per (device, board). */
inline Harness &
harnessFor(const DeviceSpec &dev, const CoEModel &model)
{
    static Harness numaA(numaDevice(), modelA());
    static Harness numaB(numaDevice(), modelB());
    static Harness umaA(umaDevice(), modelA());
    static Harness umaB(umaDevice(), modelB());
    const bool numa = dev.arch == MemArch::NUMA;
    const bool boardA = &model == &modelA();
    if (numa)
        return boardA ? numaA : numaB;
    return boardA ? umaA : umaB;
}

// -------------------------------------- preemption study (Figure 25)

/**
 * Dense deployment for the preemption/migration study. Figures 13-24
 * exercise the switch-bound regime (boardA's 380 experts thrash every
 * tier); preemption targets the opposite regime — executors
 * compute-busy on long lower-class batches when an urgent request
 * lands — which needs experts resident and compute, not loading, as
 * the long pole.
 */
inline BoardSpec
preemptDenseBoard()
{
    BoardSpec s;
    s.name = "fig25-dense";
    s.numComponents = 36;
    s.numDetectionExperts = 6;
    s.headFraction = 0.4;
    s.headMass = 0.85;
    s.seed = 0x25;
    return s;
}

inline const CoEModel &
preemptDenseModel()
{
    static const CoEModel m = buildBoard(preemptDenseBoard());
    return m;
}

/**
 * The Table 1 NUMA node derated to a shared/thermally-capped operating
 * point, so batch execution times dominate expert movement.
 */
inline const DeviceSpec &
preemptEdgeDevice()
{
    static const DeviceSpec d = [] {
        DeviceSpec dev = numaRtx3080Ti();
        dev.name = "NUMA edge (RTX3080Ti @ 35% shared)";
        dev.gpu.computeScale = 0.35;
        return dev;
    }();
    return d;
}

inline Harness &
preemptHarness()
{
    static Harness h(preemptEdgeDevice(), preemptDenseModel());
    return h;
}

/**
 * One GPU + one CPU executor per replica, maximum expert residency:
 * the dense working set stays hot, so a burst finds executors
 * mid-batch rather than mid-load. The CPU DRAM cache tier doubles as
 * the checkpoint parking tier.
 */
inline EngineConfig
preemptReplicaConfig()
{
    const CoServeContext &ctx = preemptHarness().context();
    const auto bounds = gpuExpertCountBounds(ctx, 1, 1);
    EngineConfig cfg = coserveConfig(
        ctx, coserveExecutorLayout(ctx, 1, 1, bounds.second), "fig25");
    cfg.cpuCacheTier = true;
    cfg.cpuCacheBytes = ctx.device().cpuMemoryBytes / 2;
    return cfg;
}

/** The five systems of Figures 13/14, in the paper's legend order. */
inline const std::vector<SystemKind> &
figure13Systems()
{
    static const std::vector<SystemKind> kinds{
        SystemKind::SambaCoE, SystemKind::SambaFifo,
        SystemKind::SambaParallel, SystemKind::CoServeBest,
        SystemKind::CoServeCasual};
    return kinds;
}

/** The four ablation stages of Figures 15/16. */
inline const std::vector<SystemKind> &
ablationSystems()
{
    static const std::vector<SystemKind> kinds{
        SystemKind::CoServeNone, SystemKind::CoServeEM,
        SystemKind::CoServeEMRA, SystemKind::CoServeCasual};
    return kinds;
}

/** Tasks of Section 5.1, paired with their board models. */
struct TaskCase
{
    const char *name;
    const CoEModel *model;
    TaskSpec spec;
};

inline std::vector<TaskCase>
paperTasks()
{
    return {
        {"Task A1", &modelA(), taskA1()},
        {"Task A2", &modelA(), taskA2()},
        {"Task B1", &modelB(), taskB1()},
        {"Task B2", &modelB(), taskB2()},
    };
}

// ------------------------------------------------------------ perf JSON

/**
 * Minimal writer for the BENCH_*.json perf-tracking files: a flat JSON
 * object of scenario objects, each holding numeric fields. Numbers are
 * printed with enough precision to round-trip doubles.
 */
class BenchJson
{
  public:
    /** Start a new scenario @p name (names must be distinct). */
    void
    scenario(const std::string &name)
    {
        for (const Scenario &sc : scenarios_)
            COSERVE_CHECK(sc.name != name, "duplicate scenario ", name);
        scenarios_.push_back({name, {}});
    }

    /** Add numeric field @p key = @p value to the current scenario. */
    void
    field(const std::string &key, double value)
    {
        COSERVE_CHECK(!scenarios_.empty(), "field() before scenario()");
        scenarios_.back().fields.push_back({key, value});
    }

    /** Write the collected scenarios to @p path; returns success. */
    bool
    writeTo(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            return false;
        std::fprintf(f, "{\n");
        for (std::size_t s = 0; s < scenarios_.size(); ++s) {
            const Scenario &sc = scenarios_[s];
            std::fprintf(f, "  \"%s\": {\n", sc.name.c_str());
            for (std::size_t i = 0; i < sc.fields.size(); ++i) {
                std::fprintf(f, "    \"%s\": %.17g%s\n",
                             sc.fields[i].first.c_str(),
                             sc.fields[i].second,
                             i + 1 < sc.fields.size() ? "," : "");
            }
            std::fprintf(f, "  }%s\n",
                         s + 1 < scenarios_.size() ? "," : "");
        }
        std::fprintf(f, "}\n");
        std::fclose(f);
        return true;
    }

  private:
    struct Scenario
    {
        std::string name;
        std::vector<std::pair<std::string, double>> fields;
    };
    std::vector<Scenario> scenarios_;
};

} // namespace coserve::bench

#endif // COSERVE_BENCH_BENCH_UTIL_H
