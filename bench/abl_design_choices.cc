/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out beyond the
 * paper's own ablation (Figures 15/16):
 *
 *  - prefetch overlap (switch loading during preceding batches),
 *  - usage-ordered preload at initialization,
 *  - batching (head-run batches vs. one-by-one execution),
 *  - the decay-window-planned memory split vs. the casual 75/25 split.
 */

#include "bench/bench_util.h"

using namespace coserve;

namespace {

void
row(Table &t, Harness &h, const Trace &trace, const char *label,
    SystemKind kind, const SystemOverrides &ov)
{
    const RunResult r = h.run(kind, trace, ov);
    t.addRow({label, formatDouble(r.throughput, 1),
              std::to_string(r.switches.total()),
              formatDouble(toSeconds(r.makespan), 1) + " s"});
}

} // namespace

int
main()
{
    bench::banner("Design-choice ablations",
                  "CoServe variants with single techniques disabled "
                  "(board A, task A1, both devices)");

    for (const DeviceSpec &dev :
         {bench::numaDevice(), bench::umaDevice()}) {
        Harness &h = bench::harnessFor(dev, bench::modelA());
        const Trace trace = generateTrace(bench::modelA(), taskA1());
        std::printf("\n%s\n", dev.name.c_str());
        Table t({"Variant", "Throughput (img/s)", "Switches",
                 "Makespan"});

        row(t, h, trace, "CoServe Best (all on)",
            SystemKind::CoServeBest, {});
        SystemOverrides noPf;
        noPf.prefetch = 0;
        row(t, h, trace, "  - prefetch overlap",
            SystemKind::CoServeBest, noPf);
        row(t, h, trace, "CoServe Casual (75/25 split)",
            SystemKind::CoServeCasual, {});
        SystemOverrides casualNoPf;
        casualNoPf.prefetch = 0;
        row(t, h, trace, "  - prefetch overlap",
            SystemKind::CoServeCasual, casualNoPf);
        t.print();
    }
    return 0;
}
