/**
 * @file
 * Figure 12 — variation of (whole-batch) execution latency with
 * increasing batch sizes, for ResNet101 and YOLOv5m on CPU and GPU of
 * both devices, plus the fitted K (gradient) and B (intercept) the
 * profiler extracts for the scheduler.
 *
 * Paper reference: CPU batch latency reaches ~1200 ms at batch 30
 * (NUMA ResNet101); GPU stays under ~200 ms; latency is linear in the
 * batch size.
 */

#include "bench/bench_util.h"
#include "core/profiler.h"

using namespace coserve;

namespace {

void
sweep(const DeviceSpec &dev, ArchId arch)
{
    const LatencyModel truth = LatencyModel::calibrated(dev);
    const FootprintModel fp = FootprintModel::calibrated(dev);
    OfflineProfiler profiler(dev, truth, fp);

    std::printf("\n%s — %s\n", dev.name.c_str(), archSpec(arch).name.c_str());
    Table t({"Batch", "GPU latency (ms)", "CPU latency (ms)"});
    const auto gpu = profiler.sweep(arch, ProcKind::GPU);
    const auto cpu = profiler.sweep(arch, ProcKind::CPU);
    for (std::size_t i = 0; i < gpu.size(); i += 4) {
        t.addRow({std::to_string(gpu[i].batchSize),
                  formatDouble(toMilliseconds(gpu[i].batchLatency)),
                  formatDouble(toMilliseconds(cpu[i].batchLatency))});
    }
    t.print();

    for (ProcKind proc : {ProcKind::GPU, ProcKind::CPU}) {
        const PerfEntry e = profiler.profilePair(arch, proc);
        std::printf("fitted %s: K = %s, B = %s, maxBatch = %d "
                    "(R^2 = %.4f)\n",
                    toString(proc), formatTime(e.k).c_str(),
                    formatTime(e.b).c_str(), e.maxBatch, e.r2);
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 12",
                  "Execution latency vs. batch size with fitted K/B "
                  "(the scheduler's latency model, Section 4.2/4.5)");
    sweep(bench::numaDevice(), ArchId::ResNet101);
    sweep(bench::numaDevice(), ArchId::YoloV5m);
    sweep(bench::umaDevice(), ArchId::ResNet101);
    sweep(bench::umaDevice(), ArchId::YoloV5m);
    return 0;
}
