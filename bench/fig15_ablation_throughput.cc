/**
 * @file
 * Figure 15 — throughput breakdown per optimization: CoServe None
 * (no optimizations) -> +expert management (EM) -> +request arranging
 * (EM+RA) -> full CoServe (+request assigning).
 *
 * Paper reference (None/EM/EM+RA/CoServe), NUMA:
 *   A1: 4.5/5.8/11.8/26.3    A2: 4.7/6.0/13.6/28.7
 *   B1: 5.5/6.8/12.6/27.2    B2: 5.2/6.7/14.5/29.6
 * UMA:
 *   A1: 4.3/6.0/10.9/24.5    A2: 4.3/5.8/11.6/27.6
 *   B1: 4.4/5.9/12.5/24.1    B2: 4.4/5.7/13.2/27.6
 */

#include "bench/bench_util.h"

using namespace coserve;

int
main()
{
    bench::banner("Figure 15",
                  "Throughput breakdown for each optimization");

    for (const DeviceSpec &dev :
         {bench::numaDevice(), bench::umaDevice()}) {
        std::printf("\n================ %s ================\n",
                    dev.name.c_str());
        for (const bench::TaskCase &tc : bench::paperTasks()) {
            Harness &h = bench::harnessFor(dev, *tc.model);
            const Trace trace = generateTrace(*tc.model, tc.spec);
            std::printf("\n%s\n", tc.name);
            Table t({"Stage", "Throughput (img/s)", "vs None"});
            double none = 0.0;
            for (SystemKind kind : bench::ablationSystems()) {
                const RunResult r = h.run(kind, trace);
                if (kind == SystemKind::CoServeNone)
                    none = r.throughput;
                const char *label =
                    kind == SystemKind::CoServeCasual ? "CoServe (full)"
                                                      : toString(kind);
                t.addRow({label, formatDouble(r.throughput, 1),
                          formatDouble(r.throughput / none, 2) + "x"});
            }
            t.print();
        }
    }
    std::printf("\nExpected shape (paper): each stage raises throughput;"
                " the full system lands 5x-6x above None.\n");
    return 0;
}
