/**
 * @file
 * google-benchmark microbenchmarks for the hot paths of the serving
 * engine: event queue churn, request-queue grouped insertion, eviction
 * victim selection, and one full scheduling decision (the real-world
 * wall-clock cost behind Figure 19's scheduling bar).
 */

#include <benchmark/benchmark.h>

#include "baselines/evictions.h"
#include "coe/board_builder.h"
#include "coe/dependency.h"
#include "coe/usage.h"
#include "core/two_stage_eviction.h"
#include "runtime/pool.h"
#include "runtime/queue.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace coserve {
namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule(i, [] {});
        eq.run();
        benchmark::DoNotOptimize(eq.executed());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(8192);

void
BM_RequestQueueGroupedInsert(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state) {
        RequestQueue q;
        for (int i = 0; i < state.range(0); ++i) {
            Request r;
            r.id = i;
            r.expert = static_cast<ExpertId>(rng.uniformInt(64));
            q.pushGrouped(r);
        }
        benchmark::DoNotOptimize(q.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RequestQueueGroupedInsert)->Arg(1024)->Arg(4096);

void
BM_EvictionSelection(benchmark::State &state)
{
    const CoEModel model = buildBoard(boardA());
    const DependencyGraph deps(model);
    const UsageProfile usage = UsageProfile::exact(model);
    ModelPool pool("bench", 1ll << 40);
    for (ExpertId e = 0; e < static_cast<ExpertId>(state.range(0)); ++e)
        pool.insertResident(e, 190ll << 20, static_cast<uint64_t>(e), e);

    EvictionContext ctx;
    ctx.model = &model;
    ctx.deps = &deps;
    ctx.usage = &usage;
    ctx.now = 1000;

    TwoStageEviction twoStage;
    LruEviction lru;
    for (auto _ : state) {
        benchmark::DoNotOptimize(twoStage.selectVictim(pool, ctx));
        benchmark::DoNotOptimize(lru.selectVictim(pool, ctx));
    }
}
BENCHMARK(BM_EvictionSelection)->Arg(32)->Arg(128)->Arg(380);

void
BM_ZipfSampling(benchmark::State &state)
{
    ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)), 1.0);
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf(rng));
}
BENCHMARK(BM_ZipfSampling)->Arg(352);

void
BM_UsageProfileBuild(benchmark::State &state)
{
    const CoEModel model = buildBoard(boardA());
    for (auto _ : state) {
        const UsageProfile usage = UsageProfile::exact(model);
        benchmark::DoNotOptimize(usage.topKMass(35));
    }
}
BENCHMARK(BM_UsageProfileBuild);

} // namespace
} // namespace coserve

BENCHMARK_MAIN();
