/**
 * @file
 * Record/replay CLI over one canned coordinator scenario.
 *
 * The scenario is deliberately rich — 4 replicas, multi-tenant SLO
 * trace, admission + work stealing + autoscaling, one crash and one
 * straggler window — so its decision log covers every record kind.
 * CI records the log with one compiler and replays it with another
 * (and under sanitizers): the simulation promises bit-identical
 * schedules, so any divergence is a determinism bug.
 *
 *   ./replay_tool digest             # run, print the decision digest
 *   ./replay_tool record <log>       # run, save the decision log
 *   ./replay_tool replay <log>       # re-run forcing <log>'s decisions
 *                                    # (exits 1 on first divergence)
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "cluster/cluster.h"
#include "workload/generator.h"

using namespace coserve;

namespace {

Trace
scenarioTrace()
{
    TenantSpec interactive;
    interactive.name = "interactive";
    interactive.cls = RequestClass::Interactive;
    interactive.ratePerSec = 12.0;
    interactive.latencyBudget = milliseconds(350);
    interactive.diurnalAmplitude = 0.85;
    interactive.diurnalPeriod = seconds(60);
    TenantSpec batch;
    batch.name = "batch";
    batch.cls = RequestClass::Batch;
    batch.ratePerSec = 8.0;
    batch.latencyBudget = seconds(2);
    TenantSpec bestEffort;
    bestEffort.name = "best-effort";
    bestEffort.cls = RequestClass::BestEffort;
    bestEffort.ratePerSec = 3.0;
    bestEffort.arrivals = ArrivalProcess::MMPP;
    bestEffort.mmppBurstFactor = 6.0;
    return generateSloTrace(bench::modelA(),
                            {interactive, batch, bestEffort},
                            seconds(120), 0x51D);
}

ClusterResult
runScenario(const std::string &recordPath,
            const std::string &replayPath)
{
    Harness &h = bench::harnessFor(bench::numaDevice(), bench::modelA());
    const Trace trace = scenarioTrace();
    const EngineConfig cfg =
        h.makeConfig(SystemKind::CoServeCasual, trace, {});

    ClusterConfig cc = homogeneousCluster(
        h.context(), cfg, 4, RoutingPolicy::LeastLoaded, "replay-tool");
    cc.workStealing.enabled = true;
    cc.admission.enabled = true;
    cc.admission.slack = 1.25;
    cc.autoscale.enabled = true;
    cc.autoscale.interval = seconds(1);
    cc.autoscale.cooldown = seconds(2);

    RunOptions opts = runWithMode(RunMode::Online);
    opts.recordPath = recordPath;
    opts.replayPath = replayPath;
    // One crash plus one straggler window: the log must carry every
    // decision kind the coordinator can emit.
    opts.faults.crashes.push_back({3, seconds(40)});
    opts.faults.stragglers.push_back({1, seconds(20), seconds(60), 3.0});

    ClusterEngine cluster(std::move(cc));
    return cluster.run(trace, opts);
}

void
report(const ClusterResult &r)
{
    std::printf("images %lld, decisions %lld, rehomed %lld, "
                "lost %lld\n",
                static_cast<long long>(r.images),
                static_cast<long long>(r.decisionCount),
                static_cast<long long>(r.crashRehomed),
                static_cast<long long>(r.crashLost));
    std::printf("digest 0x%016" PRIx64 "\n", r.decisionDigest);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *cmd = argc > 1 ? argv[1] : "digest";
    if (std::strcmp(cmd, "digest") == 0 && argc <= 2) {
        report(runScenario("", ""));
        return 0;
    }
    if (std::strcmp(cmd, "record") == 0 && argc == 3) {
        const ClusterResult r = runScenario(argv[2], "");
        report(r);
        std::printf("recorded %s\n", argv[2]);
        return 0;
    }
    if (std::strcmp(cmd, "replay") == 0 && argc == 3) {
        // A divergence fatal()s with exit code 1 inside run().
        const ClusterResult r = runScenario("", argv[2]);
        report(r);
        std::printf("replay OK: every decision matched %s\n", argv[2]);
        return 0;
    }
    std::fprintf(stderr,
                 "usage: %s digest | record <log> | replay <log>\n",
                 argv[0]);
    return 2;
}
