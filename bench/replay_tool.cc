/**
 * @file
 * Record/replay CLI over one canned coordinator scenario.
 *
 * The default scenario is deliberately rich — 4 replicas, multi-tenant
 * SLO trace, admission + work stealing + autoscaling, one crash and one
 * straggler window — so its decision log covers every pre-preemption
 * record kind. The `--preempt` scenario swaps in the Figure 25
 * dense-board deployment with deadline-rescue preemption and live
 * migration enabled, so Preempt/Checkpoint/Restore/Migrate records
 * land in the log too. CI records each log with one compiler and
 * replays it with another (and under sanitizers): the simulation
 * promises bit-identical schedules, so any divergence is a
 * determinism bug.
 *
 *   ./replay_tool digest [--preempt]       # run, print decision digest
 *   ./replay_tool record <log> [--preempt] # run, save the decision log
 *   ./replay_tool replay <log> [--preempt] # re-run forcing <log>'s
 *                                          # decisions (exits 1 on
 *                                          # first divergence)
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "cluster/cluster.h"
#include "workload/generator.h"

using namespace coserve;

namespace {

Trace
scenarioTrace()
{
    TenantSpec interactive;
    interactive.name = "interactive";
    interactive.cls = RequestClass::Interactive;
    interactive.ratePerSec = 12.0;
    interactive.latencyBudget = milliseconds(350);
    interactive.diurnalAmplitude = 0.85;
    interactive.diurnalPeriod = seconds(60);
    TenantSpec batch;
    batch.name = "batch";
    batch.cls = RequestClass::Batch;
    batch.ratePerSec = 8.0;
    batch.latencyBudget = seconds(2);
    TenantSpec bestEffort;
    bestEffort.name = "best-effort";
    bestEffort.cls = RequestClass::BestEffort;
    bestEffort.ratePerSec = 3.0;
    bestEffort.arrivals = ArrivalProcess::MMPP;
    bestEffort.mmppBurstFactor = 6.0;
    return generateSloTrace(bench::modelA(),
                            {interactive, batch, bestEffort},
                            seconds(120), 0x51D);
}

Trace
preemptTrace()
{
    // Figure 25's bursty interactive over long Batch groups on the
    // dense resident board (different seed: this is the CI cross-replay
    // scenario, not the figure).
    TenantSpec interactive;
    interactive.name = "interactive";
    interactive.cls = RequestClass::Interactive;
    interactive.ratePerSec = 30.0;
    interactive.latencyBudget = milliseconds(500);
    interactive.arrivals = ArrivalProcess::MMPP;
    interactive.mmppBurstFactor = 6.0;
    interactive.diurnalAmplitude = 0.8;
    interactive.diurnalPeriod = seconds(60);
    TenantSpec batch;
    batch.name = "batch";
    batch.cls = RequestClass::Batch;
    batch.ratePerSec = 50.0;
    batch.latencyBudget = seconds(20);
    return generateSloTrace(bench::preemptDenseModel(),
                            {interactive, batch}, seconds(60), 0x8325);
}

ClusterResult
runScenario(const std::string &recordPath,
            const std::string &replayPath, bool preempt)
{
    ClusterConfig cc;
    RunOptions opts = runWithMode(RunMode::Online);
    if (preempt) {
        // Dense-board deployment with every preemption-layer decision
        // kind active: deadline rescues, checkpoint/restore, live
        // migration (steal + quiesce), and crash evacuation of parked
        // checkpoints.
        cc = homogeneousCluster(bench::preemptHarness().context(),
                                bench::preemptReplicaConfig(), 3,
                                RoutingPolicy::LeastLoaded,
                                "replay-preempt");
        cc.preemption.enabled = true;
        cc.preemption.minRunQuantum = milliseconds(20);
        cc.preemption.maxPreemptionsPerGroup = 2;
        cc.preemption.migration = true;
        cc.preemption.migrationMinRemaining = milliseconds(20);
        cc.autoscale.minReplicas = 1;
        cc.autoscale.startReplicas = 3;
        opts.faults.crashes.push_back({2, seconds(30)});
    } else {
        Harness &h =
            bench::harnessFor(bench::numaDevice(), bench::modelA());
        const EngineConfig cfg =
            h.makeConfig(SystemKind::CoServeCasual, scenarioTrace(), {});
        cc = homogeneousCluster(h.context(), cfg, 4,
                                RoutingPolicy::LeastLoaded,
                                "replay-tool");
        // One crash plus one straggler window: the log must carry
        // every decision kind the coordinator can emit.
        opts.faults.crashes.push_back({3, seconds(40)});
        opts.faults.stragglers.push_back(
            {1, seconds(20), seconds(60), 3.0});
    }
    cc.workStealing.enabled = true;
    cc.admission.enabled = true;
    cc.admission.slack = 1.25;
    cc.autoscale.enabled = true;
    cc.autoscale.interval = seconds(1);
    cc.autoscale.cooldown = seconds(2);

    opts.recordPath = recordPath;
    opts.replayPath = replayPath;

    const Trace trace = preempt ? preemptTrace() : scenarioTrace();
    ClusterEngine cluster(std::move(cc));
    return cluster.run(trace, opts);
}

void
report(const ClusterResult &r)
{
    std::printf("images %lld, decisions %lld, rehomed %lld, "
                "lost %lld\n",
                static_cast<long long>(r.images),
                static_cast<long long>(r.decisionCount),
                static_cast<long long>(r.crashRehomed),
                static_cast<long long>(r.crashLost));
    if (r.preemptionEnabled) {
        std::printf("preemptions %lld, checkpointed %lld, "
                    "restored %lld, migrated %lld\n",
                    static_cast<long long>(r.preemptions),
                    static_cast<long long>(r.checkpointedGroups),
                    static_cast<long long>(r.restoredGroups),
                    static_cast<long long>(r.migratedGroups));
    }
    std::printf("digest 0x%016" PRIx64 "\n", r.decisionDigest);
}

} // namespace

int
main(int argc, char **argv)
{
    // `--preempt` may trail any command; strip it before dispatch.
    bool preempt = false;
    int n = 1;
    const char *args[3] = {nullptr, nullptr, nullptr};
    for (int i = 1; i < argc && n <= 3; ++i) {
        if (std::strcmp(argv[i], "--preempt") == 0) {
            preempt = true;
            continue;
        }
        if (n < 3)
            args[n] = argv[i];
        ++n;
    }
    const char *cmd = n > 1 ? args[1] : "digest";
    if (std::strcmp(cmd, "digest") == 0 && n <= 2) {
        report(runScenario("", "", preempt));
        return 0;
    }
    if (std::strcmp(cmd, "record") == 0 && n == 3) {
        const ClusterResult r = runScenario(args[2], "", preempt);
        report(r);
        std::printf("recorded %s\n", args[2]);
        return 0;
    }
    if (std::strcmp(cmd, "replay") == 0 && n == 3) {
        // A divergence fatal()s with exit code 1 inside run().
        const ClusterResult r = runScenario("", args[2], preempt);
        report(r);
        std::printf("replay OK: every decision matched %s\n", args[2]);
        return 0;
    }
    std::fprintf(stderr,
                 "usage: %s digest [--preempt] | record <log> "
                 "[--preempt] | replay <log> [--preempt]\n",
                 argv[0]);
    return 2;
}
