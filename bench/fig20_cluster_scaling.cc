/**
 * @file
 * Figure 20 (extension) — cluster scaling: aggregate throughput of
 * 1/2/4/8 CoServe replicas behind each routing policy.
 *
 * The paper's production line feeds one image every 4 ms (250 img/s),
 * an order of magnitude above a single engine's ~26 img/s (Figure 13),
 * so a lone replica is heavily saturated. This sweep shows the first
 * scale-out axis: replica fan-out with a cluster front-end. Aggregate
 * throughput should grow monotonically with the replica count for the
 * least-loaded policy; expert-affinity trades some balance for fewer
 * cluster-wide expert switches.
 */

#include "bench/bench_util.h"

#include "cluster/cluster.h"
#include "metrics/cluster_result.h"

using namespace coserve;

namespace {

void
sweep(const DeviceSpec &dev, const CoEModel &model)
{
    std::printf("\n================ %s / %s ================\n",
                dev.name.c_str(), model.name().c_str());

    Harness &h = bench::harnessFor(dev, model);
    TaskSpec task = taskA1();
    task.numImages = 2000;
    const Trace trace = generateTrace(model, task);
    const EngineConfig cfg =
        h.makeConfig(SystemKind::CoServeCasual, trace, {});

    Table t({"Replicas", "Policy", "Throughput (img/s)", "Speedup",
             "Switches", "Imbalance"});
    double base = 0.0;
    bool monotonic = true;
    double prevLeastLoaded = 0.0;
    for (int replicas : {1, 2, 4, 8}) {
        for (RoutingPolicy policy :
             {RoutingPolicy::RoundRobin, RoutingPolicy::LeastLoaded,
              RoutingPolicy::ExpertAffinity}) {
            ClusterEngine cluster(homogeneousCluster(
                h.context(), cfg, replicas, policy,
                "fig20"));
            const ClusterResult r = cluster.run(trace, RunOptions{});
            if (replicas == 1 &&
                policy == RoutingPolicy::RoundRobin)
                base = r.throughput;
            if (policy == RoutingPolicy::LeastLoaded) {
                if (replicas > 1 && r.throughput < prevLeastLoaded)
                    monotonic = false;
                prevLeastLoaded = r.throughput;
            }
            t.addRow({std::to_string(replicas), toString(policy),
                      formatDouble(r.throughput, 1),
                      formatDouble(r.throughput / base, 2) + "x",
                      std::to_string(r.switches.total()),
                      formatDouble(r.imbalance(), 2)});
        }
    }
    t.print();
    std::printf("least-loaded scaling 1 -> 8 replicas: %s\n",
                monotonic ? "monotonic" : "NOT monotonic");
}

} // namespace

int
main()
{
    bench::banner("Figure 20 (extension)",
                  "Cluster scaling: replicas x routing policy");
    sweep(bench::numaDevice(), bench::modelA());
    return 0;
}
