file(REMOVE_RECURSE
  "CMakeFiles/fig17_executors.dir/bench/fig17_executors.cc.o"
  "CMakeFiles/fig17_executors.dir/bench/fig17_executors.cc.o.d"
  "fig17_executors"
  "fig17_executors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_executors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
