# Empty dependencies file for fig17_executors.
# This may be replaced when dependencies are built.
