file(REMOVE_RECURSE
  "CMakeFiles/fig14_switches.dir/bench/fig14_switches.cc.o"
  "CMakeFiles/fig14_switches.dir/bench/fig14_switches.cc.o.d"
  "fig14_switches"
  "fig14_switches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
