# Empty dependencies file for fig14_switches.
# This may be replaced when dependencies are built.
