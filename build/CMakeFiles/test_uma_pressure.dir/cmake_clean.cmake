file(REMOVE_RECURSE
  "CMakeFiles/test_uma_pressure.dir/tests/test_uma_pressure.cc.o"
  "CMakeFiles/test_uma_pressure.dir/tests/test_uma_pressure.cc.o.d"
  "test_uma_pressure"
  "test_uma_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uma_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
