# Empty dependencies file for test_uma_pressure.
# This may be replaced when dependencies are built.
