# Empty dependencies file for fig20_cluster_scaling.
# This may be replaced when dependencies are built.
