file(REMOVE_RECURSE
  "CMakeFiles/fig20_cluster_scaling.dir/bench/fig20_cluster_scaling.cc.o"
  "CMakeFiles/fig20_cluster_scaling.dir/bench/fig20_cluster_scaling.cc.o.d"
  "fig20_cluster_scaling"
  "fig20_cluster_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_cluster_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
