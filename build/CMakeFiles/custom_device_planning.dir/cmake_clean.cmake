file(REMOVE_RECURSE
  "CMakeFiles/custom_device_planning.dir/examples/custom_device_planning.cpp.o"
  "CMakeFiles/custom_device_planning.dir/examples/custom_device_planning.cpp.o.d"
  "custom_device_planning"
  "custom_device_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_device_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
