# Empty dependencies file for custom_device_planning.
# This may be replaced when dependencies are built.
