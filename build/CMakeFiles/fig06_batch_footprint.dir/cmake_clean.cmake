file(REMOVE_RECURSE
  "CMakeFiles/fig06_batch_footprint.dir/bench/fig06_batch_footprint.cc.o"
  "CMakeFiles/fig06_batch_footprint.dir/bench/fig06_batch_footprint.cc.o.d"
  "fig06_batch_footprint"
  "fig06_batch_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_batch_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
