# Empty dependencies file for fig06_batch_footprint.
# This may be replaced when dependencies are built.
