# Empty dependencies file for fig15_ablation_throughput.
# This may be replaced when dependencies are built.
