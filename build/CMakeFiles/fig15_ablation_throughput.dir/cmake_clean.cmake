file(REMOVE_RECURSE
  "CMakeFiles/fig15_ablation_throughput.dir/bench/fig15_ablation_throughput.cc.o"
  "CMakeFiles/fig15_ablation_throughput.dir/bench/fig15_ablation_throughput.cc.o.d"
  "fig15_ablation_throughput"
  "fig15_ablation_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ablation_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
