file(REMOVE_RECURSE
  "CMakeFiles/fig01_switch_share.dir/bench/fig01_switch_share.cc.o"
  "CMakeFiles/fig01_switch_share.dir/bench/fig01_switch_share.cc.o.d"
  "fig01_switch_share"
  "fig01_switch_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_switch_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
