# Empty dependencies file for fig01_switch_share.
# This may be replaced when dependencies are built.
