# Empty dependencies file for fig19_overhead.
# This may be replaced when dependencies are built.
