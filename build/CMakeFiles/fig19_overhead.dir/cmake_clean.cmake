file(REMOVE_RECURSE
  "CMakeFiles/fig19_overhead.dir/bench/fig19_overhead.cc.o"
  "CMakeFiles/fig19_overhead.dir/bench/fig19_overhead.cc.o.d"
  "fig19_overhead"
  "fig19_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
