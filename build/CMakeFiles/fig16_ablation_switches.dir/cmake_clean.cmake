file(REMOVE_RECURSE
  "CMakeFiles/fig16_ablation_switches.dir/bench/fig16_ablation_switches.cc.o"
  "CMakeFiles/fig16_ablation_switches.dir/bench/fig16_ablation_switches.cc.o.d"
  "fig16_ablation_switches"
  "fig16_ablation_switches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_ablation_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
