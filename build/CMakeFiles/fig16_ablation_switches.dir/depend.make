# Empty dependencies file for fig16_ablation_switches.
# This may be replaced when dependencies are built.
