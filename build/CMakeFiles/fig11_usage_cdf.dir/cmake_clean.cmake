file(REMOVE_RECURSE
  "CMakeFiles/fig11_usage_cdf.dir/bench/fig11_usage_cdf.cc.o"
  "CMakeFiles/fig11_usage_cdf.dir/bench/fig11_usage_cdf.cc.o.d"
  "fig11_usage_cdf"
  "fig11_usage_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_usage_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
