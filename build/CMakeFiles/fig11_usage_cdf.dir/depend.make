# Empty dependencies file for fig11_usage_cdf.
# This may be replaced when dependencies are built.
