file(REMOVE_RECURSE
  "CMakeFiles/fig05_batch_latency.dir/bench/fig05_batch_latency.cc.o"
  "CMakeFiles/fig05_batch_latency.dir/bench/fig05_batch_latency.cc.o.d"
  "fig05_batch_latency"
  "fig05_batch_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_batch_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
