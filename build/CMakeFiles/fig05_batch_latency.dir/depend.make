# Empty dependencies file for fig05_batch_latency.
# This may be replaced when dependencies are built.
