# Empty dependencies file for test_pool_queue.
# This may be replaced when dependencies are built.
