file(REMOVE_RECURSE
  "CMakeFiles/test_pool_queue.dir/tests/test_pool_queue.cc.o"
  "CMakeFiles/test_pool_queue.dir/tests/test_pool_queue.cc.o.d"
  "test_pool_queue"
  "test_pool_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pool_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
