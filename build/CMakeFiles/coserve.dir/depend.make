# Empty dependencies file for coserve.
# This may be replaced when dependencies are built.
