file(REMOVE_RECURSE
  "libcoserve.a"
)
