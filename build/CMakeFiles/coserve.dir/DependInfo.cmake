
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/evictions.cc" "CMakeFiles/coserve.dir/src/baselines/evictions.cc.o" "gcc" "CMakeFiles/coserve.dir/src/baselines/evictions.cc.o.d"
  "/root/repo/src/baselines/schedulers.cc" "CMakeFiles/coserve.dir/src/baselines/schedulers.cc.o" "gcc" "CMakeFiles/coserve.dir/src/baselines/schedulers.cc.o.d"
  "/root/repo/src/baselines/systems.cc" "CMakeFiles/coserve.dir/src/baselines/systems.cc.o" "gcc" "CMakeFiles/coserve.dir/src/baselines/systems.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "CMakeFiles/coserve.dir/src/cluster/cluster.cc.o" "gcc" "CMakeFiles/coserve.dir/src/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/router.cc" "CMakeFiles/coserve.dir/src/cluster/router.cc.o" "gcc" "CMakeFiles/coserve.dir/src/cluster/router.cc.o.d"
  "/root/repo/src/coe/board_builder.cc" "CMakeFiles/coserve.dir/src/coe/board_builder.cc.o" "gcc" "CMakeFiles/coserve.dir/src/coe/board_builder.cc.o.d"
  "/root/repo/src/coe/coe_model.cc" "CMakeFiles/coserve.dir/src/coe/coe_model.cc.o" "gcc" "CMakeFiles/coserve.dir/src/coe/coe_model.cc.o.d"
  "/root/repo/src/coe/dependency.cc" "CMakeFiles/coserve.dir/src/coe/dependency.cc.o" "gcc" "CMakeFiles/coserve.dir/src/coe/dependency.cc.o.d"
  "/root/repo/src/coe/usage.cc" "CMakeFiles/coserve.dir/src/coe/usage.cc.o" "gcc" "CMakeFiles/coserve.dir/src/coe/usage.cc.o.d"
  "/root/repo/src/core/coserve.cc" "CMakeFiles/coserve.dir/src/core/coserve.cc.o" "gcc" "CMakeFiles/coserve.dir/src/core/coserve.cc.o.d"
  "/root/repo/src/core/memory_planner.cc" "CMakeFiles/coserve.dir/src/core/memory_planner.cc.o" "gcc" "CMakeFiles/coserve.dir/src/core/memory_planner.cc.o.d"
  "/root/repo/src/core/perf_matrix.cc" "CMakeFiles/coserve.dir/src/core/perf_matrix.cc.o" "gcc" "CMakeFiles/coserve.dir/src/core/perf_matrix.cc.o.d"
  "/root/repo/src/core/profiler.cc" "CMakeFiles/coserve.dir/src/core/profiler.cc.o" "gcc" "CMakeFiles/coserve.dir/src/core/profiler.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "CMakeFiles/coserve.dir/src/core/scheduler.cc.o" "gcc" "CMakeFiles/coserve.dir/src/core/scheduler.cc.o.d"
  "/root/repo/src/core/two_stage_eviction.cc" "CMakeFiles/coserve.dir/src/core/two_stage_eviction.cc.o" "gcc" "CMakeFiles/coserve.dir/src/core/two_stage_eviction.cc.o.d"
  "/root/repo/src/hw/device.cc" "CMakeFiles/coserve.dir/src/hw/device.cc.o" "gcc" "CMakeFiles/coserve.dir/src/hw/device.cc.o.d"
  "/root/repo/src/hw/transfer.cc" "CMakeFiles/coserve.dir/src/hw/transfer.cc.o" "gcc" "CMakeFiles/coserve.dir/src/hw/transfer.cc.o.d"
  "/root/repo/src/metrics/cluster_result.cc" "CMakeFiles/coserve.dir/src/metrics/cluster_result.cc.o" "gcc" "CMakeFiles/coserve.dir/src/metrics/cluster_result.cc.o.d"
  "/root/repo/src/metrics/report.cc" "CMakeFiles/coserve.dir/src/metrics/report.cc.o" "gcc" "CMakeFiles/coserve.dir/src/metrics/report.cc.o.d"
  "/root/repo/src/metrics/run_result.cc" "CMakeFiles/coserve.dir/src/metrics/run_result.cc.o" "gcc" "CMakeFiles/coserve.dir/src/metrics/run_result.cc.o.d"
  "/root/repo/src/model/architecture.cc" "CMakeFiles/coserve.dir/src/model/architecture.cc.o" "gcc" "CMakeFiles/coserve.dir/src/model/architecture.cc.o.d"
  "/root/repo/src/model/footprint_model.cc" "CMakeFiles/coserve.dir/src/model/footprint_model.cc.o" "gcc" "CMakeFiles/coserve.dir/src/model/footprint_model.cc.o.d"
  "/root/repo/src/model/latency_model.cc" "CMakeFiles/coserve.dir/src/model/latency_model.cc.o" "gcc" "CMakeFiles/coserve.dir/src/model/latency_model.cc.o.d"
  "/root/repo/src/runtime/config.cc" "CMakeFiles/coserve.dir/src/runtime/config.cc.o" "gcc" "CMakeFiles/coserve.dir/src/runtime/config.cc.o.d"
  "/root/repo/src/runtime/cpu_cache.cc" "CMakeFiles/coserve.dir/src/runtime/cpu_cache.cc.o" "gcc" "CMakeFiles/coserve.dir/src/runtime/cpu_cache.cc.o.d"
  "/root/repo/src/runtime/engine.cc" "CMakeFiles/coserve.dir/src/runtime/engine.cc.o" "gcc" "CMakeFiles/coserve.dir/src/runtime/engine.cc.o.d"
  "/root/repo/src/runtime/executor.cc" "CMakeFiles/coserve.dir/src/runtime/executor.cc.o" "gcc" "CMakeFiles/coserve.dir/src/runtime/executor.cc.o.d"
  "/root/repo/src/runtime/pool.cc" "CMakeFiles/coserve.dir/src/runtime/pool.cc.o" "gcc" "CMakeFiles/coserve.dir/src/runtime/pool.cc.o.d"
  "/root/repo/src/runtime/queue.cc" "CMakeFiles/coserve.dir/src/runtime/queue.cc.o" "gcc" "CMakeFiles/coserve.dir/src/runtime/queue.cc.o.d"
  "/root/repo/src/sim/channel.cc" "CMakeFiles/coserve.dir/src/sim/channel.cc.o" "gcc" "CMakeFiles/coserve.dir/src/sim/channel.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "CMakeFiles/coserve.dir/src/sim/event_queue.cc.o" "gcc" "CMakeFiles/coserve.dir/src/sim/event_queue.cc.o.d"
  "/root/repo/src/util/csv.cc" "CMakeFiles/coserve.dir/src/util/csv.cc.o" "gcc" "CMakeFiles/coserve.dir/src/util/csv.cc.o.d"
  "/root/repo/src/util/linear_fit.cc" "CMakeFiles/coserve.dir/src/util/linear_fit.cc.o" "gcc" "CMakeFiles/coserve.dir/src/util/linear_fit.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/coserve.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/coserve.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/coserve.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/coserve.dir/src/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/coserve.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/coserve.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/strutil.cc" "CMakeFiles/coserve.dir/src/util/strutil.cc.o" "gcc" "CMakeFiles/coserve.dir/src/util/strutil.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/coserve.dir/src/util/table.cc.o" "gcc" "CMakeFiles/coserve.dir/src/util/table.cc.o.d"
  "/root/repo/src/workload/generator.cc" "CMakeFiles/coserve.dir/src/workload/generator.cc.o" "gcc" "CMakeFiles/coserve.dir/src/workload/generator.cc.o.d"
  "/root/repo/src/workload/trace.cc" "CMakeFiles/coserve.dir/src/workload/trace.cc.o" "gcc" "CMakeFiles/coserve.dir/src/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
