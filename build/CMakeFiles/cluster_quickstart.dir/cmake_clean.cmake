file(REMOVE_RECURSE
  "CMakeFiles/cluster_quickstart.dir/examples/cluster_quickstart.cpp.o"
  "CMakeFiles/cluster_quickstart.dir/examples/cluster_quickstart.cpp.o.d"
  "cluster_quickstart"
  "cluster_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
