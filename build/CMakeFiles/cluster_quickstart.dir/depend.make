# Empty dependencies file for cluster_quickstart.
# This may be replaced when dependencies are built.
