# Empty dependencies file for fig13_throughput.
# This may be replaced when dependencies are built.
