file(REMOVE_RECURSE
  "CMakeFiles/fig13_throughput.dir/bench/fig13_throughput.cc.o"
  "CMakeFiles/fig13_throughput.dir/bench/fig13_throughput.cc.o.d"
  "fig13_throughput"
  "fig13_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
