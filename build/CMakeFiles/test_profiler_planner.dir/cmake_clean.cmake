file(REMOVE_RECURSE
  "CMakeFiles/test_profiler_planner.dir/tests/test_profiler_planner.cc.o"
  "CMakeFiles/test_profiler_planner.dir/tests/test_profiler_planner.cc.o.d"
  "test_profiler_planner"
  "test_profiler_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiler_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
