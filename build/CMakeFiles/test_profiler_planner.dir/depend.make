# Empty dependencies file for test_profiler_planner.
# This may be replaced when dependencies are built.
