# Empty dependencies file for circuit_board_inspection.
# This may be replaced when dependencies are built.
