file(REMOVE_RECURSE
  "CMakeFiles/circuit_board_inspection.dir/examples/circuit_board_inspection.cpp.o"
  "CMakeFiles/circuit_board_inspection.dir/examples/circuit_board_inspection.cpp.o.d"
  "circuit_board_inspection"
  "circuit_board_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_board_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
