file(REMOVE_RECURSE
  "CMakeFiles/fig18_memory_window.dir/bench/fig18_memory_window.cc.o"
  "CMakeFiles/fig18_memory_window.dir/bench/fig18_memory_window.cc.o.d"
  "fig18_memory_window"
  "fig18_memory_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_memory_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
