# Empty dependencies file for fig18_memory_window.
# This may be replaced when dependencies are built.
