file(REMOVE_RECURSE
  "CMakeFiles/fig12_exec_latency.dir/bench/fig12_exec_latency.cc.o"
  "CMakeFiles/fig12_exec_latency.dir/bench/fig12_exec_latency.cc.o.d"
  "fig12_exec_latency"
  "fig12_exec_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_exec_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
