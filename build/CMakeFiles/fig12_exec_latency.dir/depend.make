# Empty dependencies file for fig12_exec_latency.
# This may be replaced when dependencies are built.
