file(REMOVE_RECURSE
  "CMakeFiles/test_coe.dir/tests/test_coe.cc.o"
  "CMakeFiles/test_coe.dir/tests/test_coe.cc.o.d"
  "test_coe"
  "test_coe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
