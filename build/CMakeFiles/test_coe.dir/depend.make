# Empty dependencies file for test_coe.
# This may be replaced when dependencies are built.
