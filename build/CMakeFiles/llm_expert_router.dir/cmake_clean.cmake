file(REMOVE_RECURSE
  "CMakeFiles/llm_expert_router.dir/examples/llm_expert_router.cpp.o"
  "CMakeFiles/llm_expert_router.dir/examples/llm_expert_router.cpp.o.d"
  "llm_expert_router"
  "llm_expert_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_expert_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
