# Empty dependencies file for llm_expert_router.
# This may be replaced when dependencies are built.
