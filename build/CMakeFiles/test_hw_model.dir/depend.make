# Empty dependencies file for test_hw_model.
# This may be replaced when dependencies are built.
