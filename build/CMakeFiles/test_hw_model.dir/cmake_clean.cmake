file(REMOVE_RECURSE
  "CMakeFiles/test_hw_model.dir/tests/test_hw_model.cc.o"
  "CMakeFiles/test_hw_model.dir/tests/test_hw_model.cc.o.d"
  "test_hw_model"
  "test_hw_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
